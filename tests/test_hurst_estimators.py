"""Tests for the Hurst estimators against exact fGn with known H."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError, ParameterError
from repro.hurst import (
    aggregated_variance_hurst,
    available_methods,
    beta_from_hurst,
    dfa_hurst,
    estimate_all,
    estimate_hurst,
    fgn_whittle_hurst,
    hurst_from_beta,
    local_whittle_hurst,
    periodogram_hurst,
    rs_hurst,
    wavelet_hurst,
)
from repro.hurst.base import HurstEstimate
from repro.traffic.fgn import fgn_davies_harte

N = 1 << 15


@pytest.fixture(scope="module")
def fgn_paths():
    """One fGn path per target H, shared across estimator tests."""
    return {
        h: fgn_davies_harte(N, h, seed)
        for seed, h in enumerate([0.6, 0.75, 0.9], start=11)
    }


ESTIMATORS = {
    "aggregated_variance": (aggregated_variance_hurst, 0.10),
    "rs": (rs_hurst, 0.12),
    "periodogram": (periodogram_hurst, 0.08),
    "local_whittle": (local_whittle_hurst, 0.06),
    "fgn_whittle": (fgn_whittle_hurst, 0.05),
    "dfa": (dfa_hurst, 0.10),
    "wavelet": (wavelet_hurst, 0.05),
}


class TestAccuracyOnKnownH:
    @pytest.mark.parametrize("name", sorted(ESTIMATORS))
    @pytest.mark.parametrize("target", [0.6, 0.75, 0.9])
    def test_recovers_h(self, fgn_paths, name, target):
        estimator, tolerance = ESTIMATORS[name]
        estimate = estimator(fgn_paths[target])
        assert estimate.hurst == pytest.approx(target, abs=tolerance), name

    @pytest.mark.parametrize("name", sorted(ESTIMATORS))
    def test_white_noise_near_half(self, name, rng):
        estimator, __ = ESTIMATORS[name]
        estimate = estimator(rng.normal(size=N))
        assert estimate.hurst == pytest.approx(0.5, abs=0.08), name

    @pytest.mark.parametrize("name", sorted(ESTIMATORS))
    def test_result_type_and_method_name(self, fgn_paths, name):
        estimator, __ = ESTIMATORS[name]
        estimate = estimator(fgn_paths[0.75])
        assert isinstance(estimate, HurstEstimate)
        assert estimate.method
        assert 0.0 < estimate.hurst < 1.0


class TestLrdDetection:
    def test_lrd_flagged(self, fgn_paths):
        assert wavelet_hurst(fgn_paths[0.9]).is_lrd

    def test_white_noise_not_flagged(self, rng):
        estimate = wavelet_hurst(rng.normal(size=N))
        assert not estimate.is_lrd


class TestBetaMaps:
    def test_round_trip(self):
        assert hurst_from_beta(beta_from_hurst(0.7)) == pytest.approx(0.7)

    def test_paper_values(self):
        """H = 0.62 (Bell Labs) <-> beta = 0.76."""
        assert beta_from_hurst(0.62) == pytest.approx(0.76)
        assert hurst_from_beta(0.4) == pytest.approx(0.8)

    def test_domains(self):
        with pytest.raises(ParameterError):
            beta_from_hurst(1.0)
        with pytest.raises(ParameterError):
            hurst_from_beta(2.0)

    def test_estimate_exposes_beta(self, fgn_paths):
        estimate = wavelet_hurst(fgn_paths[0.75])
        assert estimate.beta == pytest.approx(2 - 2 * estimate.hurst)


class TestRegistry:
    def test_available_methods_complete(self):
        assert set(available_methods()) == set(ESTIMATORS)

    def test_dispatch(self, fgn_paths):
        direct = wavelet_hurst(fgn_paths[0.75])
        via_registry = estimate_hurst(fgn_paths[0.75], "wavelet")
        assert via_registry.hurst == pytest.approx(direct.hurst)

    def test_unknown_method(self, fgn_paths):
        with pytest.raises(ParameterError, match="unknown Hurst method"):
            estimate_hurst(fgn_paths[0.75], "tea-leaves")

    def test_estimate_all(self, fgn_paths):
        results = estimate_all(fgn_paths[0.75], methods=["rs", "dfa"])
        assert set(results) == {"rs", "dfa"}

    def test_kwargs_forwarded(self, fgn_paths):
        estimate = estimate_hurst(fgn_paths[0.75], "wavelet", wavelet="db1")
        assert estimate.details["wavelet"] == "db1"


class TestShortSeriesBehaviour:
    def test_aggvar_short_series_rejected(self):
        with pytest.raises((EstimationError, ParameterError)):
            aggregated_variance_hurst(np.arange(16.0))

    def test_rs_short_series_rejected(self):
        with pytest.raises((EstimationError, ParameterError)):
            rs_hurst(np.arange(32.0))

    def test_constant_series_rejected(self):
        with pytest.raises((EstimationError, ParameterError)):
            aggregated_variance_hurst(np.ones(4096))
