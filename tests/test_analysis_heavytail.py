"""Tests for repro.analysis.heavytail."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.heavytail import (
    empirical_ccdf,
    fit_pareto_ccdf,
    hill_estimator,
    hill_plot,
    ks_distance,
    pareto_mle,
)
from repro.errors import EstimationError
from repro.traffic.distributions import Exponential, Pareto


class TestEmpiricalCcdf:
    def test_simple_case(self):
        x, p = empirical_ccdf([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(p, [0.75, 0.5, 0.25])

    def test_ties_collapse_consistently(self):
        x, p = empirical_ccdf([1.0, 1.0, 2.0])
        # Pr(X > 1) = 1/3 at both copies of 1.0.
        np.testing.assert_allclose(p[x == 1.0], 1 / 3)

    def test_monotone_decreasing(self, rng):
        x, p = empirical_ccdf(rng.exponential(size=500))
        assert np.all(np.diff(p) <= 0)

    def test_matches_pareto_theory(self, rng):
        dist = Pareto(scale=1.0, alpha=1.5)
        sample = dist.sample(100_000, rng)
        x, p = empirical_ccdf(sample)
        probe = 10.0
        idx = np.searchsorted(x, probe)
        assert p[idx] == pytest.approx(dist.ccdf(probe).item(), rel=0.1)


class TestFitParetoCcdf:
    def test_recovers_alpha(self, rng):
        dist = Pareto(scale=2.0, alpha=1.5)
        sample = dist.sample(50_000, rng)
        fit = fit_pareto_ccdf(sample)
        assert fit.alpha == pytest.approx(1.5, abs=0.1)

    def test_recovers_scale(self, rng):
        dist = Pareto(scale=2.0, alpha=1.5)
        sample = dist.sample(50_000, rng)
        fit = fit_pareto_ccdf(sample)
        assert fit.scale == pytest.approx(2.0, rel=0.25)

    def test_straightness_diagnostic(self, rng):
        """Pareto data must fit nearly perfectly; exponential must not."""
        pareto_fit = fit_pareto_ccdf(Pareto(1.0, 1.5).sample(20_000, rng))
        exp_fit = fit_pareto_ccdf(rng.exponential(size=20_000) + 1.0)
        assert pareto_fit.fit.r_squared > 0.99
        assert pareto_fit.fit.r_squared > exp_fit.fit.r_squared

    def test_distribution_property(self, rng):
        fit = fit_pareto_ccdf(Pareto(1.0, 1.4).sample(20_000, rng))
        assert isinstance(fit.distribution, Pareto)

    def test_too_few_values(self):
        with pytest.raises(EstimationError):
            fit_pareto_ccdf([1.0, 2.0, 2.0])

    def test_increasing_tail_rejected(self):
        # A degenerate "tail" that increases produces a non-positive alpha.
        values = np.concatenate([np.full(50, 1.0), np.full(500, 2.0)])
        with pytest.raises(EstimationError):
            fit_pareto_ccdf(values, tail_fraction=0.99)


class TestParetoMle:
    def test_recovers_alpha(self, rng):
        sample = Pareto(scale=1.0, alpha=1.7).sample(50_000, rng)
        alpha, scale = pareto_mle(sample)
        assert alpha == pytest.approx(1.7, abs=0.05)
        assert scale == pytest.approx(1.0, rel=0.01)

    def test_explicit_scale(self, rng):
        sample = Pareto(scale=1.0, alpha=1.5).sample(50_000, rng)
        alpha, scale = pareto_mle(sample, scale=2.0)
        # Conditioned above 2.0 the tail is still Pareto(alpha).
        assert scale == 2.0
        assert alpha == pytest.approx(1.5, abs=0.1)

    def test_degenerate_sample_rejected(self):
        with pytest.raises(EstimationError):
            pareto_mle(np.ones(100))


class TestHillEstimator:
    def test_recovers_alpha(self, rng):
        sample = Pareto(scale=1.0, alpha=1.5).sample(100_000, rng)
        assert hill_estimator(sample, 5000) == pytest.approx(1.5, abs=0.1)

    def test_k_bounds(self, rng):
        sample = Pareto(scale=1.0, alpha=1.5).sample(100, rng)
        with pytest.raises(EstimationError):
            hill_estimator(sample, 100)

    def test_hill_plot_shape(self, rng):
        sample = Pareto(scale=1.0, alpha=1.5).sample(5000, rng)
        ks = [50, 100, 200]
        estimates = hill_plot(sample, ks)
        assert estimates.shape == (3,)
        assert np.all(estimates > 0)


class TestKsDistance:
    def test_good_fit_small_distance(self, rng):
        dist = Pareto(scale=1.0, alpha=1.5)
        sample = dist.sample(10_000, rng)
        assert ks_distance(sample, dist) < 0.02

    def test_bad_fit_large_distance(self, rng):
        sample = Pareto(scale=1.0, alpha=1.5).sample(10_000, rng)
        wrong = Exponential(rate=1.0)
        assert ks_distance(sample, wrong) > 0.2
