"""Executor configuration satellites: env default, strict ints, loud fallback."""

from __future__ import annotations

import multiprocessing
import warnings

import pytest

import repro.parallel.executor as executor
from repro.errors import ParameterError
from repro.parallel import (
    default_workers,
    pool_start_method,
    resolve_workers,
    run_shards,
    set_default_workers,
    sharing_enabled,
    trace_sharing,
)


def _double(x):
    return 2 * x


class TestEnvDefault:
    def test_unset_means_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert executor._workers_from_env() == 1

    def test_valid_value_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert executor._workers_from_env() == 6

    @pytest.mark.parametrize("raw", ["zero", "2.5", "0", "-3", ""])
    def test_invalid_value_raises_naming_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ParameterError, match="REPRO_WORKERS"):
            executor._workers_from_env()

    def test_invalid_value_raises_lazily_not_at_import(self, monkeypatch):
        # The env default is read on first use, never at import time, so
        # the error surfaces from the parallel-aware call — loudly —
        # instead of breaking ``import repro`` or silently running serial.
        monkeypatch.setenv("REPRO_WORKERS", "8x")
        monkeypatch.setattr(executor, "_DEFAULT_WORKERS", None)
        with pytest.raises(ParameterError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_cli_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        monkeypatch.setattr(executor, "_DEFAULT_WORKERS", None)
        assert resolve_workers(None) == 6
        with default_workers(2):  # what --workers routes through
            assert resolve_workers(None) == 2
        assert resolve_workers(None) == 6

    def test_cli_override_wins_even_over_malformed_env(self, monkeypatch):
        # An explicit --workers must not die on an env value it never
        # consults; the env error stays armed for env-only resolution.
        monkeypatch.setenv("REPRO_WORKERS", "8x")
        monkeypatch.setattr(executor, "_DEFAULT_WORKERS", None)
        with default_workers(2):
            assert resolve_workers(None) == 2
        with pytest.raises(ParameterError, match="REPRO_WORKERS"):
            resolve_workers(None)


class TestStrictIntWorkers:
    @pytest.mark.parametrize("bad", [2.5, 1.0, "3", True, False])
    def test_set_default_workers_rejects_non_int(self, bad):
        with pytest.raises(ParameterError, match="workers"):
            set_default_workers(bad)

    @pytest.mark.parametrize("bad", [2.5, "3", True])
    def test_default_workers_context_rejects_non_int(self, bad):
        with pytest.raises(ParameterError, match="workers"):
            with default_workers(bad):
                pass  # pragma: no cover

    @pytest.mark.parametrize("bad", [2.5, 1.5, "4", True])
    def test_resolve_workers_rejects_non_int(self, bad):
        with pytest.raises(ParameterError, match="workers"):
            resolve_workers(bad)

    def test_genuine_ints_accepted(self):
        assert resolve_workers(3) == 3
        with default_workers(2):
            assert resolve_workers(None) == 2


class TestLoudSerialFallback:
    def test_pool_failure_warns_once_naming_cause(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise OSError("semaphores unavailable in sandbox")

        monkeypatch.setattr(multiprocessing, "get_context", no_pool)
        import repro.utils.once as once

        monkeypatch.setattr(once, "_SEEN", set())
        with pytest.warns(RuntimeWarning, match="semaphores unavailable"):
            assert run_shards(_double, [(1,), (2,)], workers=2) == [2, 4]
        # Second failure in the same session is silent (one-time warning).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert run_shards(_double, [(3,), (4,)], workers=2) == [6, 8]

    def test_serial_path_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert run_shards(_double, [(5,)], workers=4) == [10]


class TestSharingToggle:
    def test_default_on_and_restored(self):
        assert sharing_enabled()
        with trace_sharing(False):
            assert not sharing_enabled()
        assert sharing_enabled()

    def test_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with trace_sharing(False):
                raise RuntimeError("boom")
        assert sharing_enabled()


def test_pool_start_method_is_real():
    assert pool_start_method() in multiprocessing.get_all_start_methods()


class TestPersistentPoolDeterminism:
    """A multi-call session on the persistent runtime is bit-identical to
    fresh-pool and serial runs — the PR 4 acceptance pin."""

    def test_multi_call_session_bit_identical(self):
        import numpy as np

        from repro.core.systematic import SystematicSampler
        from repro.parallel import parallel_instance_means, pool_runtime
        from repro.traffic.synthetic import fgn_trace

        trace = fgn_trace(1 << 13, 20260726)
        sampler = SystematicSampler(interval=64, offset=None)

        def session(workers):
            return [
                parallel_instance_means(sampler, trace, 12, 20260726 + i,
                                        workers=workers)
                for i in range(3)
            ]

        serial = session(1)
        fresh = session(4)
        with pool_runtime() as rt:
            pooled = session(4)
            assert rt.forks <= 1  # the whole session shared one pool
        for a, b, c in zip(serial, fresh, pooled):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_estimators_identical_on_reused_pool(self):
        import numpy as np

        from repro.hurst.rs import default_window_sizes
        from repro.parallel import parallel_rs_statistics, pool_runtime
        from repro.traffic.synthetic import fgn_trace

        x = fgn_trace(1 << 13, 7).values
        sizes = default_window_sizes(x.size)
        fresh = parallel_rs_statistics(x, sizes, workers=4)
        with pool_runtime():
            pooled = [parallel_rs_statistics(x, sizes, workers=4)
                      for __ in range(3)]
        for p in pooled:
            # Same plan, same partials, same merge order: exact equality.
            np.testing.assert_array_equal(fresh, p)
