"""Tests for repro.trace.packet."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.packet import PacketRecord, PacketTrace


def small_trace() -> PacketTrace:
    return PacketTrace(
        timestamps=[0.0, 0.5, 1.0, 1.5, 2.0],
        sources=[1, 1, 2, 1, 3],
        destinations=[2, 2, 3, 2, 1],
        sizes=[40, 1500, 576, 40, 1500],
        protocols=[6, 6, 17, 6, 6],
    )


class TestPacketRecord:
    def test_od_pair(self):
        record = PacketRecord(timestamp=1.0, src=5, dst=9, size=40)
        assert record.od_pair == (5, 9)

    def test_default_protocol_tcp(self):
        assert PacketRecord(0.0, 1, 2, 100).protocol == 6

    def test_frozen(self):
        record = PacketRecord(0.0, 1, 2, 100)
        with pytest.raises(AttributeError):
            record.size = 200


class TestPacketTraceBasics:
    def test_len(self):
        assert len(small_trace()) == 5

    def test_getitem(self):
        record = small_trace()[2]
        assert record == PacketRecord(1.0, 2, 3, 576, 17)

    def test_iter(self):
        records = list(small_trace())
        assert len(records) == 5
        assert all(isinstance(r, PacketRecord) for r in records)

    def test_duration(self):
        assert small_trace().duration == pytest.approx(2.0)

    def test_duration_single_packet(self):
        trace = PacketTrace([1.0], [1], [2], [40])
        assert trace.duration == 0.0

    def test_total_bytes(self):
        assert small_trace().total_bytes == 40 + 1500 + 576 + 40 + 1500

    def test_mean_rate(self):
        trace = small_trace()
        assert trace.mean_rate == pytest.approx(trace.total_bytes / 2.0)

    def test_equality(self):
        assert small_trace() == small_trace()

    def test_rejects_unsorted_timestamps(self):
        with pytest.raises(TraceFormatError, match="non-decreasing"):
            PacketTrace([1.0, 0.5], [1, 1], [2, 2], [40, 40])

    def test_rejects_ragged_columns(self):
        with pytest.raises(TraceFormatError, match="rows"):
            PacketTrace([0.0, 1.0], [1], [2, 2], [40, 40])

    def test_empty(self):
        trace = PacketTrace.empty()
        assert len(trace) == 0
        assert trace.total_bytes == 0
        assert trace.mean_rate == 0.0


class TestSelection:
    def test_select_mask(self):
        trace = small_trace()
        sub = trace.select(trace.sizes == 1500)
        assert len(sub) == 2
        assert set(sub.sizes.tolist()) == {1500}

    def test_select_shape_mismatch(self):
        with pytest.raises(TraceFormatError, match="mask shape"):
            small_trace().select(np.array([True, False]))

    def test_filter_od_single_pair(self):
        sub = small_trace().filter_od([(1, 2)])
        assert len(sub) == 3
        assert set(sub.sources.tolist()) == {1}
        assert set(sub.destinations.tolist()) == {2}

    def test_filter_od_multiple_pairs(self):
        sub = small_trace().filter_od([(1, 2), (3, 1)])
        assert len(sub) == 4

    def test_filter_od_empty_pairs(self):
        assert len(small_trace().filter_od([])) == 0

    def test_filter_od_directionality(self):
        """(2, 3) and (3, 2) are distinct OD pairs."""
        sub = small_trace().filter_od([(3, 2)])
        assert len(sub) == 0


class TestConstructors:
    def test_from_records_sorts(self):
        records = [
            PacketRecord(2.0, 1, 2, 40),
            PacketRecord(1.0, 3, 4, 576),
        ]
        trace = PacketTrace.from_records(records)
        assert trace.timestamps[0] == pytest.approx(1.0)
        assert trace[0].src == 3

    def test_concat_merges_sorted(self):
        a = PacketTrace([0.0, 2.0], [1, 1], [2, 2], [40, 40])
        b = PacketTrace([1.0, 3.0], [5, 5], [6, 6], [100, 100])
        merged = a.concat(b)
        assert len(merged) == 4
        np.testing.assert_allclose(merged.timestamps, [0.0, 1.0, 2.0, 3.0])
        assert merged[1].src == 5
