"""Tests for repro.analysis.bursts — the Sec. V-B observation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bursts import (
    analyze_bursts,
    burst_lengths,
    empirical_hazard,
    run_lengths,
    threshold_process,
)
from repro.errors import EstimationError, ParameterError
from repro.traffic.copula import ParetoLRDModel


class TestThresholdProcess:
    def test_indicator_values(self):
        q = threshold_process([1.0, 5.0, 2.0, 8.0], 3.0)
        np.testing.assert_array_equal(q, [0, 1, 0, 1])

    def test_strict_inequality(self):
        """Eq. (17) uses f(t) > a_th, strictly."""
        q = threshold_process([3.0], 3.0)
        np.testing.assert_array_equal(q, [0])


class TestRunLengths:
    def test_basic_runs(self):
        lengths = run_lengths(np.array([1, 1, 0, 1, 0, 1, 1, 1]))
        np.testing.assert_array_equal(lengths, [2, 1, 3])

    def test_zero_runs(self):
        lengths = run_lengths(np.array([1, 1, 0, 0, 1]), value=0)
        np.testing.assert_array_equal(lengths, [2])

    def test_all_ones(self):
        np.testing.assert_array_equal(run_lengths(np.ones(5, dtype=int)), [5])

    def test_no_runs(self):
        assert run_lengths(np.zeros(5, dtype=int)).size == 0

    def test_empty(self):
        assert run_lengths(np.array([], dtype=int)).size == 0

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            run_lengths(np.ones((2, 2)))

    def test_lengths_sum_to_total_ones(self, rng):
        q = (rng.random(1000) < 0.4).astype(int)
        assert run_lengths(q).sum() == q.sum()


class TestBurstLengths:
    def test_counts_bursts_above_threshold(self):
        values = [0.0, 5.0, 5.0, 0.0, 5.0, 0.0]
        np.testing.assert_array_equal(burst_lengths(values, 1.0), [2, 1])


class TestEmpiricalHazard:
    def test_known_hazard(self):
        # Bursts: [1, 1, 2, 3]; P(B=1)=0.5, P(B>=1)=1 -> hazard(1)=0.5.
        lengths = np.array([1, 1, 2, 3])
        out = empirical_hazard(lengths, [1, 2, 3])
        np.testing.assert_allclose(out, [0.5, 0.5, 0.0])

    def test_nan_when_no_bursts_reach_tau(self):
        out = empirical_hazard(np.array([1, 2]), [5])
        assert np.isnan(out[0])

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            empirical_hazard(np.array([]), [1])

    def test_heavy_tail_hazard_rises(self, rng):
        """For Pareto-like bursts the persistence grows with tau (Eq. 20)."""
        model = ParetoLRDModel.from_mean(5.68, 1.5, 0.8)
        x = model.generate(1 << 17, rng)
        lengths = burst_lengths(x, 0.5 * x.mean())
        taus = np.array([1, 2, 4, 8])
        hazard = empirical_hazard(lengths, taus)
        valid = ~np.isnan(hazard)
        assert hazard[valid][-1] > hazard[valid][0]


class TestAnalyzeBursts:
    def test_full_analysis_on_lrd_traffic(self, rng):
        model = ParetoLRDModel.from_mean(5.68, 1.5, 0.8)
        x = model.generate(1 << 16, rng)
        analysis = analyze_bursts(x, epsilon=0.5)
        assert analysis.n_bursts >= 8
        assert analysis.threshold == pytest.approx(0.5 * x.mean())
        assert analysis.alpha > 0
        assert analysis.mean_length >= 1.0

    def test_paper_epsilon_range_all_heavy(self, rng):
        """The paper: alpha varies mildly over eps but the burst tail stays
        heavy.  (For an exact-Pareto marginal the smallest usable eps is
        scale/mean = (alpha-1)/alpha ≈ 0.33, so the sweep starts at 0.5.)"""
        model = ParetoLRDModel.from_mean(5.68, 1.5, 0.8)
        x = model.generate(1 << 17, rng)
        for eps in (0.5, 1.0, 1.5):
            analysis = analyze_bursts(x, epsilon=eps)
            assert 0.5 < analysis.alpha < 4.0, f"eps={eps}"

    def test_ccdf_output(self, rng):
        model = ParetoLRDModel.from_mean(5.68, 1.5, 0.8)
        x = model.generate(1 << 14, rng)
        analysis = analyze_bursts(x, epsilon=0.5)
        b, p = analysis.ccdf()
        assert b.size == p.size
        assert np.all(np.diff(p) <= 0)

    def test_too_few_bursts_rejected(self):
        flat = np.ones(100)
        with pytest.raises(EstimationError):
            analyze_bursts(flat, epsilon=1.5)

    def test_invalid_epsilon(self, rng):
        with pytest.raises(ParameterError):
            analyze_bursts(rng.random(100), epsilon=0.0)
