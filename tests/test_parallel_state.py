"""Tests for repro.parallel.state: merge algebra of the partial states."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.parallel.state import (
    AggVarState,
    EnsembleMeansState,
    MergeableState,
    MomentState,
    RSState,
    TailHistogramState,
    merge_states,
)


class TestMomentState:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 2.0, size=1001)
        state = MomentState.from_values(x)
        assert state.count == x.size
        assert state.mean == pytest.approx(x.mean(), rel=1e-12)
        assert state.variance == pytest.approx(x.var(), rel=1e-12)

    def test_merge_matches_whole(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=997)
        merged = MomentState.from_values(x[:313]).merge(
            MomentState.from_values(x[313:])
        )
        assert merged.count == x.size
        assert merged.mean == pytest.approx(x.mean(), rel=1e-12)
        assert merged.variance == pytest.approx(x.var(), rel=1e-12)

    def test_empty_is_identity(self):
        state = MomentState.from_values([1.0, 2.0, 3.0])
        assert MomentState().merge(state) == state
        assert state.merge(MomentState()) == state

    def test_empty_finalizes_to_nan(self):
        count, mean, variance = MomentState().finalize()
        assert count == 0
        assert np.isnan(mean) and np.isnan(variance)

    def test_merge_order_near_invariant(self):
        rng = np.random.default_rng(2)
        parts = [MomentState.from_values(rng.normal(size=100)) for _ in range(5)]
        forward = merge_states(parts)
        backward = merge_states(parts[::-1])
        assert forward.mean == pytest.approx(backward.mean, rel=1e-12)
        assert forward.variance == pytest.approx(backward.variance, rel=1e-12)


class TestEnsembleMeansState:
    def test_merge_restores_order(self):
        a = EnsembleMeansState(start=0, means=np.array([1.0, 2.0]))
        b = EnsembleMeansState(start=2, means=np.array([3.0]))
        for merged in (a.merge(b), b.merge(a)):
            np.testing.assert_array_equal(merged.finalize(), [1.0, 2.0, 3.0])

    def test_non_adjacent_rejected(self):
        a = EnsembleMeansState(start=0, means=np.array([1.0]))
        c = EnsembleMeansState(start=5, means=np.array([2.0]))
        with pytest.raises(ParameterError, match="non-adjacent"):
            a.merge(c)


class TestTailHistogramState:
    def test_counts_exact(self):
        q = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        thresholds = np.array([0.5, 2.0, 10.0])
        state = TailHistogramState.from_values(q, thresholds)
        np.testing.assert_array_equal(state.above, [4, 2, 0])
        np.testing.assert_array_equal(state.finalize(), [0.8, 0.4, 0.0])

    def test_merge_is_addition(self):
        thresholds = np.array([1.0])
        a = TailHistogramState.from_values([0.5, 2.0], thresholds)
        b = TailHistogramState.from_values([3.0], thresholds)
        merged = a.merge(b)
        assert merged.total == 3
        np.testing.assert_array_equal(merged.above, [2])

    def test_empty_identity(self):
        thresholds = np.array([1.0, 2.0])
        state = TailHistogramState.from_values([0.0, 3.0], thresholds)
        merged = TailHistogramState.empty(2).merge(state)
        np.testing.assert_array_equal(merged.above, state.above)
        assert merged.total == state.total

    def test_empty_finalize_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            TailHistogramState.empty(3).finalize()

    def test_mismatched_grids_rejected(self):
        a = TailHistogramState.empty(2)
        b = TailHistogramState.empty(3)
        with pytest.raises(ParameterError, match="different scale grids"):
            a.merge(b)


class TestRSState:
    def test_no_finite_windows_is_nan(self):
        state = RSState(
            finite_sum=np.zeros(2), finite_count=np.zeros(2, dtype=np.int64)
        )
        assert np.all(np.isnan(state.finalize()))

    def test_merge_sums(self):
        a = RSState(finite_sum=np.array([2.0]), finite_count=np.array([1]))
        b = RSState(finite_sum=np.array([4.0]), finite_count=np.array([1]))
        np.testing.assert_allclose(a.merge(b).finalize(), [3.0])


class TestAggVarState:
    def test_merge_matches_whole_variance(self):
        rng = np.random.default_rng(3)
        means = rng.normal(size=101)
        a = AggVarState.from_block_means([means[:40]])
        b = AggVarState.from_block_means([means[40:]])
        np.testing.assert_allclose(
            a.merge(b).finalize(), [means.var()], rtol=1e-12
        )

    def test_empty_level_stays_nan(self):
        state = AggVarState.from_block_means([np.empty(0)])
        assert np.all(np.isnan(state.finalize()))


class TestProtocol:
    def test_states_satisfy_protocol(self):
        instances = [
            MomentState(),
            EnsembleMeansState(start=0, means=np.empty(0)),
            TailHistogramState.empty(1),
            RSState(np.zeros(1), np.zeros(1, dtype=np.int64)),
            AggVarState.from_block_means([np.empty(0)]),
        ]
        for state in instances:
            assert isinstance(state, MergeableState)

    def test_merge_states_empty_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            merge_states([])
