"""Tests for the three classical samplers and the shared result type."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import SamplingResult, interval_for_rate, series_values
from repro.core.simple_random import BernoulliSampler, SimpleRandomSampler
from repro.core.stratified import StratifiedSampler
from repro.core.systematic import SystematicSampler
from repro.errors import ParameterError
from repro.trace.process import RateProcess


SERIES = np.arange(100, dtype=float)


class TestSamplingResult:
    def test_basic_properties(self):
        result = SamplingResult(
            indices=np.array([0, 10, 20]),
            values=np.array([1.0, 2.0, 3.0]),
            n_population=100,
            method="test",
        )
        assert result.n_samples == 3
        assert result.n_base == 3
        assert result.n_extra == 0
        assert result.sampled_mean == pytest.approx(2.0)
        assert result.actual_rate == pytest.approx(0.03)

    def test_eta(self):
        result = SamplingResult(
            indices=np.array([0]), values=np.array([4.0]), n_population=10,
            method="test",
        )
        assert result.eta(8.0) == pytest.approx(0.5)

    def test_extra_accounting(self):
        result = SamplingResult(
            indices=np.array([0, 5, 7]),
            values=np.array([1.0, 9.0, 8.0]),
            n_population=10,
            method="bss",
            n_base=1,
        )
        assert result.n_extra == 2

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ParameterError):
            SamplingResult(
                indices=np.array([200]), values=np.array([1.0]),
                n_population=100, method="test",
            )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ParameterError):
            SamplingResult(
                indices=np.array([1, 2]), values=np.array([1.0]),
                n_population=100, method="test",
            )

    def test_n_base_bounds(self):
        with pytest.raises(ParameterError):
            SamplingResult(
                indices=np.array([1]), values=np.array([1.0]),
                n_population=10, method="test", n_base=5,
            )


class TestSeriesValues:
    def test_accepts_rate_process(self):
        process = RateProcess(values=np.array([1.0, 2.0]))
        np.testing.assert_array_equal(series_values(process), [1.0, 2.0])

    def test_accepts_array(self):
        np.testing.assert_array_equal(series_values([3.0, 4.0]), [3.0, 4.0])


class TestIntervalForRate:
    def test_inverse(self):
        assert interval_for_rate(0.01) == 100
        assert interval_for_rate(1.0) == 1

    def test_invalid(self):
        with pytest.raises(ParameterError):
            interval_for_rate(0.0)


class TestSystematicSampler:
    def test_every_cth_element(self):
        result = SystematicSampler(interval=10).sample(SERIES)
        np.testing.assert_array_equal(result.indices, np.arange(0, 100, 10))
        np.testing.assert_array_equal(result.values, SERIES[::10])

    def test_offset(self):
        result = SystematicSampler(interval=10, offset=3).sample(SERIES)
        assert result.indices[0] == 3
        np.testing.assert_array_equal(np.diff(result.indices), 10)

    def test_random_offset_varies(self):
        sampler = SystematicSampler(interval=50, offset=None)
        offsets = {sampler.sample(SERIES, seed).indices[0] for seed in range(30)}
        assert len(offsets) > 1

    def test_from_rate(self):
        sampler = SystematicSampler.from_rate(0.1)
        assert sampler.interval == 10
        assert sampler.rate == pytest.approx(0.1)

    def test_deterministic_mean_on_linear_series(self):
        """On 0..99 with C=10 offset 0 the sampled mean is 45."""
        assert SystematicSampler(10).sample(SERIES).sampled_mean == pytest.approx(45.0)

    def test_offset_out_of_range(self):
        with pytest.raises(ParameterError):
            SystematicSampler(interval=10, offset=10)

    def test_interval_exceeds_length(self):
        with pytest.raises(ParameterError):
            SystematicSampler(interval=200).sample(SERIES)

    @given(st.integers(1, 30), st.integers(30, 200))
    @settings(max_examples=30, deadline=None)
    def test_count_property(self, interval, n):
        """ceil(n / C) samples from offset 0, all on the C-grid."""
        series = np.arange(n, dtype=float)
        result = SystematicSampler(interval=min(interval, n)).sample(series)
        expected = int(np.ceil(n / min(interval, n)))
        assert result.n_samples == expected
        assert np.all(result.indices % min(interval, n) == 0)


class TestStratifiedSampler:
    def test_one_sample_per_stratum(self, rng):
        result = StratifiedSampler(interval=10).sample(SERIES, rng)
        assert result.n_samples == 10
        np.testing.assert_array_equal(result.indices // 10, np.arange(10))

    def test_partial_tail_stratum(self, rng):
        series = np.arange(25, dtype=float)
        result = StratifiedSampler(interval=10).sample(series, rng)
        assert result.n_samples == 3
        assert 20 <= result.indices[-1] < 25

    def test_instances_differ(self):
        sampler = StratifiedSampler(interval=10)
        a = sampler.sample(SERIES, 1).indices
        b = sampler.sample(SERIES, 2).indices
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        sampler = StratifiedSampler(interval=10)
        np.testing.assert_array_equal(
            sampler.sample(SERIES, 7).indices, sampler.sample(SERIES, 7).indices
        )

    def test_unbiased_over_instances(self, rng):
        """Averaged over many instances the stratified mean hits the truth."""
        sampler = StratifiedSampler(interval=10)
        means = [sampler.sample(SERIES, child).sampled_mean
                 for child in rng.spawn(200)]
        assert np.mean(means) == pytest.approx(SERIES.mean(), abs=0.5)

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_indices_sorted_unique_property(self, interval):
        result = StratifiedSampler(interval=interval).sample(SERIES, 3)
        assert np.all(np.diff(result.indices) > 0)


class TestSimpleRandomSampler:
    def test_fixed_count(self, rng):
        result = SimpleRandomSampler(n_samples=7).sample(SERIES, rng)
        assert result.n_samples == 7
        assert np.unique(result.indices).size == 7

    def test_rate_count(self, rng):
        result = SimpleRandomSampler(rate=0.2).sample(SERIES, rng)
        assert result.n_samples == 20

    def test_minimum_one_sample(self, rng):
        result = SimpleRandomSampler(rate=1e-6).sample(SERIES, rng)
        assert result.n_samples == 1

    def test_both_parameters_rejected(self):
        with pytest.raises(ParameterError):
            SimpleRandomSampler(rate=0.1, n_samples=5)
        with pytest.raises(ParameterError):
            SimpleRandomSampler()

    def test_oversampling_rejected(self, rng):
        with pytest.raises(ParameterError):
            SimpleRandomSampler(n_samples=101).sample(SERIES, rng)

    def test_unbiased_over_instances(self, rng):
        sampler = SimpleRandomSampler(rate=0.1)
        means = [sampler.sample(SERIES, child).sampled_mean
                 for child in rng.spawn(300)]
        assert np.mean(means) == pytest.approx(SERIES.mean(), abs=1.0)


class TestBernoulliSampler:
    def test_rate_approximate(self, rng):
        series = np.ones(10_000)
        result = BernoulliSampler(rate=0.1).sample(series, rng)
        assert result.n_samples == pytest.approx(1000, rel=0.2)

    def test_at_least_one_sample(self, rng):
        result = BernoulliSampler(rate=1e-9).sample(SERIES, rng)
        assert result.n_samples >= 1

    def test_invalid_rate(self):
        with pytest.raises(ParameterError):
            BernoulliSampler(rate=1.5)
