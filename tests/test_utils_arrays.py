"""Tests for repro.utils.arrays."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.utils.arrays import (
    as_float_array,
    block_means,
    geometric_grid,
    running_mean,
    sliding_disjoint_blocks,
)


class TestAsFloatArray:
    def test_coerces_list(self):
        out = as_float_array([1, 2, 3])
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(ParameterError, match="at least 1"):
            as_float_array([])

    def test_rejects_2d(self):
        with pytest.raises(ParameterError, match="one-dimensional"):
            as_float_array([[1, 2], [3, 4]])

    def test_rejects_nan(self):
        with pytest.raises(ParameterError, match="non-finite"):
            as_float_array([1.0, np.nan])

    def test_min_length(self):
        with pytest.raises(ParameterError, match="at least 4"):
            as_float_array([1, 2, 3], min_length=4)


class TestBlockMeans:
    def test_exact_blocks(self):
        out = block_means(np.array([1.0, 3.0, 5.0, 7.0]), 2)
        np.testing.assert_array_equal(out, [2.0, 6.0])

    def test_drops_partial_tail(self):
        out = block_means(np.arange(5, dtype=float), 2)
        np.testing.assert_array_equal(out, [0.5, 2.5])

    def test_block_one_is_identity(self):
        x = np.arange(6, dtype=float)
        np.testing.assert_array_equal(block_means(x, 1), x)

    def test_block_too_large(self):
        with pytest.raises(ParameterError, match="no complete block"):
            block_means(np.arange(3, dtype=float), 4)

    def test_invalid_block(self):
        with pytest.raises(ParameterError):
            block_means(np.arange(3, dtype=float), 0)

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=200),
    )
    def test_mass_conservation_property(self, block, n):
        """Sum of block means times block size equals sum over used prefix."""
        x = np.arange(n, dtype=float)
        usable = (n // block) * block
        if usable == 0:
            with pytest.raises(ParameterError):
                block_means(x, block)
            return
        out = block_means(x, block)
        assert out.size == usable // block
        np.testing.assert_allclose(out.sum() * block, x[:usable].sum())


class TestSlidingDisjointBlocks:
    def test_shape(self):
        out = sliding_disjoint_blocks(np.arange(10, dtype=float), 3)
        assert out.shape == (3, 3)

    def test_row_contents(self):
        out = sliding_disjoint_blocks(np.arange(6, dtype=float), 2)
        np.testing.assert_array_equal(out[1], [2.0, 3.0])


class TestGeometricGrid:
    def test_endpoints(self):
        grid = geometric_grid(1e-5, 1e-1, 5)
        assert grid[0] == pytest.approx(1e-5)
        assert grid[-1] == pytest.approx(1e-1)

    def test_log_spacing(self):
        grid = geometric_grid(1.0, 100.0, 3)
        np.testing.assert_allclose(grid, [1.0, 10.0, 100.0])

    def test_rejects_bad_bounds(self):
        with pytest.raises(ParameterError):
            geometric_grid(0.0, 1.0, 3)
        with pytest.raises(ParameterError):
            geometric_grid(2.0, 1.0, 3)
        with pytest.raises(ParameterError):
            geometric_grid(1.0, 2.0, 1)


class TestRunningMean:
    def test_values(self):
        out = running_mean(np.array([2.0, 4.0, 6.0]))
        np.testing.assert_allclose(out, [2.0, 3.0, 4.0])

    def test_empty(self):
        assert running_mean(np.array([])).size == 0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_last_equals_mean(self, values):
        arr = np.asarray(values)
        out = running_mean(arr)
        np.testing.assert_allclose(out[-1], arr.mean(), rtol=1e-9, atol=1e-9)
