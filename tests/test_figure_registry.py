"""Registry-wide smoke test: every figure renders, is finite, and is
deterministic — serially and through the sharded engine.

This is the acceptance pin for the sweep refactor: all 21 figure modules
now declare their panels as SweepSpecs, so one parametrized test can run
the whole registry at tiny scale and assert

* each panel renders and its columns match the x grid,
* values are finite (NaN cells are allowed only where a figure designs
  them in, e.g. infeasible design regions; infinities never are),
* two runs are bit-identical (pure seed-label streams),
* ``workers=4`` is bit-identical to ``workers=1``.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import available_experiments, run_experiment

TINY = 0.02
SEED = 20050601


@pytest.fixture(scope="module")
def baseline():
    """One tiny-scale serial run of the whole registry, cached."""
    return {
        name: run_experiment(name, scale=TINY, seed=SEED)
        for name in available_experiments()
    }


def _same_values(left, right) -> bool:
    """Bit-for-bit column equality, counting NaN cells as equal."""
    if len(left) != len(right):
        return False
    return all(
        a == b or (math.isnan(float(a)) and math.isnan(float(b)))
        for a, b in zip(left, right)
    )


def _assert_same_panels(first, second, context: str) -> None:
    assert len(first) == len(second), context
    for a, b in zip(first, second):
        assert a.experiment_id == b.experiment_id, context
        assert _same_values(a.x_values, b.x_values), (context, a.experiment_id)
        assert list(a.series) == list(b.series), (context, a.experiment_id)
        for name in a.series:
            assert _same_values(a.series[name], b.series[name]), (
                context, a.experiment_id, name,
            )
        assert a.notes == b.notes, (context, a.experiment_id)


@pytest.mark.parametrize("name", available_experiments())
def test_renders_and_is_finite(name, baseline):
    for panel in baseline[name]:
        text = panel.render()
        assert panel.experiment_id in text
        assert len(text.splitlines()) >= 3
        for x in panel.x_values:
            assert math.isfinite(float(x)), (panel.experiment_id, "x", x)
        n_finite = 0
        for series_name, column in panel.series.items():
            assert len(column) == len(panel.x_values), (
                panel.experiment_id, series_name,
            )
            n_finite += sum(math.isfinite(float(v)) for v in column)
            # Designed-in NaN cells (infeasible design regions, contour
            # levels above the attainable maximum) are tolerated, but a
            # value may never overflow to infinity.
            assert not any(math.isinf(float(v)) for v in column), (
                panel.experiment_id, series_name, "inf",
            )
        assert n_finite, (panel.experiment_id, "no finite values at all")


@pytest.mark.parametrize("name", available_experiments())
def test_deterministic_across_two_calls(name, baseline):
    again = run_experiment(name, scale=TINY, seed=SEED)
    _assert_same_panels(baseline[name], again, "rerun")


@pytest.mark.parametrize("name", available_experiments())
def test_workers4_bit_identical_to_workers1(name, baseline):
    routed = run_experiment(name, scale=TINY, seed=SEED, workers=4)
    _assert_same_panels(baseline[name], routed, "workers=4")


@pytest.mark.parametrize("name", ["fig05", "fig18", "fig21"])
def test_persistent_runtime_bit_identical(name, baseline):
    """A multi-figure session on one reused pool matches the serial run.

    fig05/fig18 route Monte-Carlo ensembles through the engine (the
    second call publishes *after* the pool forked, forcing the
    attach-by-name path); fig21 is a ``parallel_rows`` figure, whose row
    dispatch must keep fresh-forking under an active runtime.
    """
    from repro.parallel import pool_runtime

    with pool_runtime():
        for attempt in range(2):
            routed = run_experiment(name, scale=TINY, seed=SEED, workers=2)
            _assert_same_panels(
                baseline[name], routed, f"persistent[{attempt}]"
            )
