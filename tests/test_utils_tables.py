"""Tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_series_table, format_table


class TestFormatTable:
    def test_header_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert lines[1].split() == ["1", "2"]
        assert lines[2].split() == ["3", "4"]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123456]])
        assert "0.0001235" in text or "0.0001234" in text

    def test_alignment(self):
        text = format_table(["col"], [[1], [1000]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])


class TestFormatSeriesTable:
    def test_columns(self):
        text = format_series_table(
            "rate", [0.1, 0.2], {"sys": [1.0, 2.0], "bss": [3.0, 4.0]}
        )
        header = text.splitlines()[0].split()
        assert header == ["rate", "sys", "bss"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            format_series_table("x", [1, 2], {"y": [1.0]})

    def test_row_count(self):
        text = format_series_table("x", [1, 2, 3], {"y": [4, 5, 6]})
        assert len(text.splitlines()) == 4
