"""Parity tests pinning the vectorized hot paths to their reference loops.

Every vectorized rewrite in this repo keeps the original loop
implementation as a private ``_reference_*`` function; these tests assert
the two produce *identical* output — same rng consumption, same values
bit-for-bit, same ``n_base`` and index ordering — across the regimes and
edge cases the rewrites special-case (fixed vs online thresholds, random
offsets, zero pre-samples, zero extras, partial tail intervals, series of
one interval).  The single exception is DFA, pinned at 1e-12 because its
hot path keeps a BLAS matrix-vector product whose reduction order is not
bit-reproducible against a per-box loop.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveRandomSampler
from repro.core.bss import BiasedSystematicSampler
from repro.core.stratified import StratifiedSampler
from repro.core.systematic import SystematicSampler
from repro.core.variance import _reference_instance_means, instance_means
from repro.errors import ParameterError
from repro.hurst.aggvar import _reference_aggregate_variances, aggregate_variances
from repro.hurst.confidence import (
    _reference_moving_block_resample,
    moving_block_resample,
)
from repro.hurst.dfa import _reference_dfa_fluctuations, dfa_fluctuations
from repro.hurst.rs import _reference_rs_statistics, rs_statistics
from repro.kernels import kernels
from repro.queueing.simulation import (
    _reference_tail_probabilities,
    queue_occupancy,
    tail_probabilities,
)
from repro.trace.io import _RECORD, read_binary, write_binary, write_csv
from repro.trace.packet import PacketTrace
from repro.traffic.synthetic import fgn_trace, synthetic_trace


@pytest.fixture(scope="module")
def pareto():
    """Heavy-tailed LRD trace — the paper's synthetic workload."""
    return synthetic_trace(1 << 14, 1234)


@pytest.fixture(scope="module")
def fgn():
    """Light-tailed Gaussian LRD trace — the no-bursts regime."""
    return fgn_trace(1 << 14, 4321)


def assert_same_sampling(result, reference):
    np.testing.assert_array_equal(result.indices, reference.indices)
    np.testing.assert_array_equal(result.values, reference.values)
    assert result.n_population == reference.n_population
    assert result.n_base == reference.n_base
    assert result.method == reference.method


# ------------------------------------------------------------------- BSS
class TestBssParity:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"n_presamples": 0},
            {"n_presamples": 50},
            {"extra_samples": 0},
            {"epsilon": 0.6},
            {"epsilon": 1.5},
            {"interval": 37, "extra_samples": 3},
            {"interval": 1000, "extra_samples": 12},
        ],
    )
    def test_online_threshold(self, pareto, kwargs):
        config = {"interval": 100, "extra_samples": 8}
        config.update(kwargs)
        sampler = BiasedSystematicSampler(**config)
        assert_same_sampling(
            sampler.sample(pareto), sampler._reference_sample(pareto)
        )

    @pytest.mark.parametrize("epsilon", [1.0, 1.1, 1.3])
    def test_online_threshold_fgn(self, fgn, epsilon):
        """Light-tailed input: triggers range from dense to nonexistent."""
        sampler = BiasedSystematicSampler(
            interval=64, extra_samples=6, epsilon=epsilon
        )
        assert_same_sampling(
            sampler.sample(fgn), sampler._reference_sample(fgn)
        )

    @pytest.mark.parametrize("factor", [0.5, 1.0, 2.0, 100.0])
    def test_fixed_threshold(self, pareto, factor):
        sampler = BiasedSystematicSampler(
            interval=50, extra_samples=4, threshold=factor * pareto.mean
        )
        assert_same_sampling(
            sampler.sample(pareto), sampler._reference_sample(pareto)
        )

    def test_random_offset_consumes_same_stream(self, pareto):
        sampler = BiasedSystematicSampler(
            interval=128, extra_samples=4, offset=None
        )
        for seed in range(5):
            assert_same_sampling(
                sampler.sample(pareto, seed),
                sampler._reference_sample(pareto, seed),
            )

    def test_partial_tail_interval(self, pareto):
        """Extras of the final interval may run past the series end."""
        n = len(pareto) - 7
        values = pareto.values[:n]
        sampler = BiasedSystematicSampler(
            interval=50, extra_samples=8, threshold=0.5 * float(values.mean())
        )
        assert_same_sampling(
            sampler.sample(values), sampler._reference_sample(values)
        )

    def test_series_of_exactly_one_interval(self):
        values = np.full(10, 3.0)
        sampler = BiasedSystematicSampler(interval=10, extra_samples=3)
        assert_same_sampling(
            sampler.sample(values), sampler._reference_sample(values)
        )

    def test_series_shorter_than_interval_rejected_by_both(self):
        values = np.ones(5)
        sampler = BiasedSystematicSampler(interval=10, extra_samples=2)
        with pytest.raises(ParameterError):
            sampler.sample(values)
        with pytest.raises(ParameterError):
            sampler._reference_sample(values)

    def test_presamples_exceed_series(self, pareto):
        sampler = BiasedSystematicSampler(
            interval=2048, extra_samples=4, n_presamples=100
        )
        assert_same_sampling(
            sampler.sample(pareto), sampler._reference_sample(pareto)
        )


# ------------------------------------------------------- compiled kernel
class TestKernelParity:
    """The compiled BSS replay tail is pinned bit-identical.

    With numba installed (CI's with-numba leg) the real jitted kernel
    runs; without it the fixture routes the *same function object*
    numba would compile through the kernel hook interpreted, so the
    replay algorithm itself is pinned everywhere and the jit is only a
    compilation detail (strict IEEE, no fastmath).
    """

    @pytest.fixture(autouse=True)
    def kernel_scope(self, monkeypatch):
        import repro.kernels as kernels_mod

        if not kernels_mod.numba_available():
            monkeypatch.setattr(kernels_mod, "_NUMBA", True)
            monkeypatch.setattr(
                kernels_mod, "_REPLAY_KERNEL", kernels_mod._replay_tail
            )
        with kernels(True):
            yield

    def assert_kernel_parity(self, sampler, series):
        compiled = sampler.sample(series)  # kernel hook active
        with kernels(False):
            pure = sampler.sample(series)
        assert_same_sampling(compiled, pure)
        assert_same_sampling(compiled, sampler._reference_sample(series))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"n_presamples": 0},
            {"n_presamples": 50},
            {"extra_samples": 0},
            {"epsilon": 0.6},
            {"epsilon": 1.5},
            {"interval": 37, "extra_samples": 3},
            {"interval": 1000, "extra_samples": 12},
        ],
    )
    def test_online_threshold(self, pareto, kwargs):
        config = {"interval": 100, "extra_samples": 8}
        config.update(kwargs)
        self.assert_kernel_parity(BiasedSystematicSampler(**config), pareto)

    @pytest.mark.parametrize("epsilon", [1.0, 1.1, 1.3])
    def test_online_threshold_fgn(self, fgn, epsilon):
        sampler = BiasedSystematicSampler(
            interval=64, extra_samples=6, epsilon=epsilon
        )
        self.assert_kernel_parity(sampler, fgn)

    def test_partial_tail_interval(self, pareto):
        values = pareto.values[: len(pareto) - 7]
        sampler = BiasedSystematicSampler(interval=50, extra_samples=8)
        self.assert_kernel_parity(sampler, values)

    def test_fixed_threshold_unaffected(self, pareto):
        """The hook only covers the online path; fixed stays identical."""
        sampler = BiasedSystematicSampler(
            interval=50, extra_samples=4, threshold=pareto.mean
        )
        self.assert_kernel_parity(sampler, pareto)


# -------------------------------------------------------------- adaptive
class TestAdaptiveParity:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_rate": 0.01},
            {"base_rate": 0.02, "boost_factor": 8.0, "trigger": 1.2},
            {"base_rate": 0.5, "boost_factor": 2.0},
            {"base_rate": 1e-9},  # fallback single-sample draw
        ],
    )
    def test_same_stream_same_samples(self, pareto, kwargs):
        sampler = AdaptiveRandomSampler(**kwargs)
        for seed in (0, 7):
            assert_same_sampling(
                sampler.sample(pareto, seed),
                sampler._reference_sample(pareto, seed),
            )

    def test_flat_series(self):
        flat = np.full(5000, 2.5)
        sampler = AdaptiveRandomSampler(base_rate=0.05)
        assert_same_sampling(
            sampler.sample(flat, 3), sampler._reference_sample(flat, 3)
        )


# ----------------------------------------------------------- Monte-Carlo
class TestInstanceMeansParity:
    def test_systematic_random_offset(self, pareto):
        sampler = SystematicSampler(interval=100, offset=None)
        np.testing.assert_array_equal(
            instance_means(sampler, pareto, 32, 5),
            _reference_instance_means(sampler, pareto, 32, 5),
        )

    def test_systematic_uneven_tail(self, pareto):
        """Offsets split instances into two sample-count groups."""
        values = pareto.values[: 100 * 37 + 13]
        sampler = SystematicSampler(interval=100, offset=None)
        np.testing.assert_array_equal(
            instance_means(sampler, values, 48, 9),
            _reference_instance_means(sampler, values, 48, 9),
        )

    def test_stratified(self, pareto):
        sampler = StratifiedSampler(interval=64)
        np.testing.assert_array_equal(
            instance_means(sampler, pareto, 32, 5),
            _reference_instance_means(sampler, pareto, 32, 5),
        )

    def test_stratified_partial_stratum(self, pareto):
        values = pareto.values[: 64 * 100 + 17]
        sampler = StratifiedSampler(interval=64)
        np.testing.assert_array_equal(
            instance_means(sampler, values, 24, 2),
            _reference_instance_means(sampler, values, 24, 2),
        )

    def test_generic_sampler_unchanged(self, pareto):
        sampler = BiasedSystematicSampler(
            interval=100, extra_samples=4, offset=None
        )
        np.testing.assert_array_equal(
            instance_means(sampler, pareto, 8, 11),
            _reference_instance_means(sampler, pareto, 8, 11),
        )


class TestMovingBlockParity:
    @pytest.mark.parametrize("block", [8, 64, 511, 512, 513, 4096])
    def test_both_regimes(self, fgn, block):
        """Gather path (short blocks) and slice path (long) are identical."""
        np.testing.assert_array_equal(
            moving_block_resample(fgn.values, block, np.random.default_rng(3)),
            _reference_moving_block_resample(
                fgn.values, block, np.random.default_rng(3)
            ),
        )


# ------------------------------------------------------------ estimators
class TestEstimatorParity:
    @pytest.mark.parametrize("trace_name", ["pareto", "fgn"])
    def test_rs(self, trace_name, request):
        x = request.getfixturevalue(trace_name).values
        sizes = [8, 16, 100, 1000, x.size, x.size + 1]
        np.testing.assert_array_equal(
            rs_statistics(x, sizes), _reference_rs_statistics(x, sizes)
        )

    def test_rs_constant_windows(self):
        x = np.concatenate([np.full(64, 5.0), np.random.default_rng(0).random(64)])
        sizes = [8, 32, 64]
        np.testing.assert_array_equal(
            rs_statistics(x, sizes), _reference_rs_statistics(x, sizes)
        )

    @pytest.mark.parametrize("trace_name", ["pareto", "fgn"])
    def test_dfa(self, trace_name, request):
        """DFA keeps the BLAS matrix-vector product on its hot path, whose
        reduction order may differ from the per-box dot by ulps — parity
        is therefore pinned at 1e-12 instead of bit equality."""
        x = request.getfixturevalue(trace_name).values
        sizes = [3, 4, 8, 100, 1000, x.size + 1]  # includes degenerate sizes
        np.testing.assert_allclose(
            dfa_fluctuations(x, sizes),
            _reference_dfa_fluctuations(x, sizes),
            rtol=1e-12,
        )

    @pytest.mark.parametrize("trace_name", ["pareto", "fgn"])
    def test_aggvar(self, trace_name, request):
        x = request.getfixturevalue(trace_name).values
        sizes = [1, 2, 10, 100, x.size // 8]
        np.testing.assert_array_equal(
            aggregate_variances(x, sizes),
            _reference_aggregate_variances(x, sizes),
        )

    def test_aggvar_oversize_block_rejected_by_both(self, pareto):
        x = pareto.values
        with pytest.raises(ParameterError):
            aggregate_variances(x, [x.size + 1])
        with pytest.raises(ParameterError):
            _reference_aggregate_variances(x, [x.size + 1])


# -------------------------------------------------------------- queueing
class TestTailProbabilityParity:
    def test_matches_scan(self, pareto):
        occupancy = queue_occupancy(pareto.values, capacity=pareto.mean / 0.8)
        thresholds = np.geomspace(0.5, max(float(occupancy.max()), 1.0), 50)
        np.testing.assert_array_equal(
            tail_probabilities(occupancy, thresholds),
            _reference_tail_probabilities(occupancy, thresholds),
        )

    def test_exact_threshold_is_strict(self):
        occupancy = np.array([0.0, 1.0, 1.0, 2.0, 3.0])
        thresholds = [0.0, 1.0, 2.5, 3.0, 4.0]
        np.testing.assert_array_equal(
            tail_probabilities(occupancy, thresholds),
            _reference_tail_probabilities(occupancy, thresholds),
        )


# -------------------------------------------------------------- trace io
def _loop_csv_lines(trace: PacketTrace) -> str:
    lines = ["# repro-trace v1: timestamp,src,dst,size,protocol"]
    for i in range(len(trace)):
        lines.append(
            f"{trace.timestamps[i]:.6f},{trace.sources[i]},"
            f"{trace.destinations[i]},{trace.sizes[i]},{trace.protocols[i]}"
        )
    return "\n".join(lines) + "\n"


def _loop_binary_records(trace: PacketTrace) -> bytes:
    return b"".join(
        _RECORD.pack(
            float(trace.timestamps[i]),
            int(trace.sources[i]),
            int(trace.destinations[i]),
            int(trace.sizes[i]),
            int(trace.protocols[i]),
        )
        for i in range(len(trace))
    )


@pytest.fixture()
def packet_trace():
    rng = np.random.default_rng(99)
    n = 500
    return PacketTrace(
        timestamps=np.sort(rng.random(n) * 1e4),
        sources=rng.integers(0, 2**32, n, dtype=np.uint64).astype(np.uint32),
        destinations=rng.integers(0, 2**32, n, dtype=np.uint64).astype(np.uint32),
        sizes=rng.integers(0, 2**16, n).astype(np.uint32),
        protocols=rng.integers(0, 256, n).astype(np.uint8),
    )


class TestTraceIoParity:
    def test_csv_bytes_match_loop_format(self, packet_trace, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(packet_trace, path)
        assert path.read_text(encoding="utf-8") == _loop_csv_lines(packet_trace)

    def test_binary_bytes_match_struct_loop(self, packet_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_binary(packet_trace, path)
        data = path.read_bytes()
        expected = (
            b"RPTRACE1"
            + struct.pack("<Q", len(packet_trace))
            + _loop_binary_records(packet_trace)
        )
        assert data == expected
        assert read_binary(path) == packet_trace
