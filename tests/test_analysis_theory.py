"""Tests for repro.analysis.theory — the paper's closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fitting import fit_loglog
from repro.analysis.theory import (
    delta_tau,
    persistence_probability_exponential,
    persistence_probability_pareto,
    power_law_autocorrelation,
    simple_random_sampled_acf,
    stratified_sampled_acf,
    systematic_sampled_acf,
)
from repro.errors import ParameterError


TAUS = np.unique(np.round(np.geomspace(90, 512, 20)).astype(int))


class TestPowerLawAutocorrelation:
    def test_values(self):
        out = power_law_autocorrelation([1.0, 8.0], 0.5, const=2.0)
        np.testing.assert_allclose(out, [2.0, 2.0 / np.sqrt(8.0)])

    def test_domain(self):
        with pytest.raises(ParameterError):
            power_law_autocorrelation([0.0], 0.5)
        with pytest.raises(ParameterError):
            power_law_autocorrelation([1.0], 1.0)


class TestDeltaTau:
    @pytest.mark.parametrize("beta", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_fig4_positivity(self, beta):
        """Fig. 4: delta_tau > 0 for every beta — Theorem 2 applies."""
        d = delta_tau(np.arange(1, 101), beta)
        assert np.all(d > 0)

    def test_fig4_monotone_in_beta_at_tau1(self):
        """Fig. 4 orders the curves by beta at small tau."""
        values = [delta_tau([1], beta)[0] for beta in (0.1, 0.5, 0.9)]
        assert values[0] < values[1] < values[2]

    def test_decreasing_in_tau(self):
        d = delta_tau(np.arange(1, 50), 0.5)
        assert np.all(np.diff(d) < 0)

    def test_power_model_exposes_r0_problem(self):
        """The raw power law with R(0)=1 is negative at tau=1 — documenting
        why the fGn form is the default."""
        d = delta_tau([1], 0.5, model="power")
        assert d[0] < 0

    def test_power_model_positive_beyond_tau1(self):
        d = delta_tau(np.arange(2, 100), 0.5, model="power")
        assert np.all(d > 0)

    def test_invalid_model(self):
        with pytest.raises(ParameterError):
            delta_tau([1], 0.5, model="exp")

    def test_invalid_tau(self):
        with pytest.raises(ParameterError):
            delta_tau([0], 0.5)


class TestSystematicAcf:
    def test_same_exponent(self):
        rg = systematic_sampled_acf(TAUS.astype(float), 0.4, interval=10)
        fit = fit_loglog(TAUS, rg)
        assert -fit.slope == pytest.approx(0.4, abs=1e-9)

    def test_interval_scales_constant(self):
        r1 = systematic_sampled_acf([100.0], 0.4, interval=1)
        r10 = systematic_sampled_acf([100.0], 0.4, interval=10)
        assert r10[0] == pytest.approx(r1[0] * 10**-0.4)


class TestStratifiedAcf:
    @pytest.mark.parametrize("beta", [0.1, 0.4, 0.8])
    def test_fig3a_beta_recovered(self, beta):
        rg = stratified_sampled_acf(TAUS.astype(float), beta, interval=10)
        fit = fit_loglog(TAUS, rg)
        assert -fit.slope == pytest.approx(beta, abs=0.02)

    def test_approaches_power_law(self):
        """E[R(tau + tau')] -> R(tau) as tau -> inf since E[tau'] = 0."""
        taus = np.array([1000.0])
        rg = stratified_sampled_acf(taus, 0.5, interval=10)
        rf = power_law_autocorrelation(taus, 0.5)
        assert rg[0] == pytest.approx(rf[0], rel=1e-4)

    def test_small_tau_rejected(self):
        with pytest.raises(ParameterError):
            stratified_sampled_acf([0.5], 0.5, interval=10)


class TestSimpleRandomAcf:
    @pytest.mark.parametrize("beta", [0.1, 0.3, 0.5, 0.8])
    def test_fig2b_beta_recovered(self, beta):
        """Fig. 2(b): beta-hat tracks beta across the paper's sweep."""
        rg = simple_random_sampled_acf(TAUS, beta, rho=0.5)
        fit = fit_loglog(TAUS, rg)
        assert -fit.slope == pytest.approx(beta, abs=0.02)

    def test_fig2a_slope_slightly_below_beta(self):
        """Fig. 2(a): the finite-sum estimate lands near beta = 0.1 from
        below (the paper reports 0.08)."""
        rg = simple_random_sampled_acf(TAUS, 0.1, rho=0.5)
        fit = fit_loglog(TAUS, rg, base=2.0)
        assert 0.05 <= -fit.slope <= 0.12

    def test_rho_one_is_identity(self):
        rg = simple_random_sampled_acf(TAUS, 0.5, rho=1.0)
        rf = power_law_autocorrelation(TAUS.astype(float), 0.5)
        np.testing.assert_allclose(rg, rf)

    def test_mean_lag_shift(self):
        """E[a] = tau/rho, so R_g(tau) ~ (tau/rho)^-beta: smaller rho gives
        smaller correlation at the same sampled lag."""
        rg_half = simple_random_sampled_acf([128], 0.5, rho=0.5)
        rg_tenth = simple_random_sampled_acf([128], 0.5, rho=0.1)
        assert rg_tenth[0] < rg_half[0]
        assert rg_tenth[0] == pytest.approx((128 / 0.1) ** -0.5, rel=0.05)

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            simple_random_sampled_acf([0], 0.5, rho=0.5)
        with pytest.raises(ParameterError):
            simple_random_sampled_acf([1], 0.5, rho=0.0)


class TestPersistence:
    def test_pareto_persistence_rises_to_one(self):
        """Eq. (20): ℘(tau) = (tau/(tau+1))^alpha -> 1."""
        p = persistence_probability_pareto([1, 10, 100, 1000], 1.3)
        assert np.all(np.diff(p) > 0)
        assert p[-1] > 0.99

    def test_pareto_formula(self):
        p = persistence_probability_pareto([4], 2.0)
        assert p[0] == pytest.approx((4 / 5) ** 2)

    def test_exponential_constant(self):
        """Eq. (19): light tails give constant persistence e^-c."""
        assert persistence_probability_exponential(0.5) == pytest.approx(
            np.exp(-0.5)
        )

    def test_heavy_beats_light_eventually(self):
        heavy = persistence_probability_pareto([50], 1.5)[0]
        light = persistence_probability_exponential(0.5)
        assert heavy > light

    def test_domains(self):
        with pytest.raises(ParameterError):
            persistence_probability_pareto([0], 1.5)
        with pytest.raises(ParameterError):
            persistence_probability_exponential(0.0)
