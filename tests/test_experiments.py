"""Smoke + invariant tests for the experiment harness (one per figure).

Each experiment runs at a small scale; assertions target the paper's
qualitative claims (the 'shape' contract of the reproduction), not exact
values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments import available_experiments, run_experiment
from repro.experiments.runner import ExperimentResult

SCALE = 0.1
SEED = 77


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at small scale; cache panels by id."""
    cache: dict[str, ExperimentResult] = {}
    for name in available_experiments():
        for panel in run_experiment(name, scale=SCALE, seed=SEED):
            cache[panel.experiment_id] = panel
    return cache


class TestHarness:
    def test_all_experiments_registered(self):
        names = available_experiments()
        expected = {f"fig{n:02d}" for n in range(2, 23) if n not in (0, 1)}
        assert set(names) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ParameterError):
            run_experiment("fig99")

    @pytest.mark.parametrize("bad", [2.5, 0, -1, "4", True])
    def test_bench_rejects_invalid_workers(self, bad):
        """Same strict contract as every other parallel entry point."""
        from repro.experiments.bench import run_benchmarks

        with pytest.raises(ParameterError, match="workers"):
            run_benchmarks(quick=True, workers=bad)

    def test_every_panel_renders(self, results):
        for panel in results.values():
            text = panel.render()
            assert panel.experiment_id in text
            assert len(text.splitlines()) >= 3

    def test_series_lengths_match_x(self, results):
        for panel in results.values():
            for name, column in panel.series.items():
                assert len(column) == len(panel.x_values), (
                    panel.experiment_id, name,
                )


class TestAnalyticFigures:
    def test_fig02_beta_recovered(self, results):
        panel = results["fig02b"]
        errs = [abs(b - h) for b, h in zip(panel.x_values, panel.series["beta_hat"])]
        assert max(errs) < 0.05

    def test_fig03_both_methods_preserve(self, results):
        for pid in ("fig03a", "fig03b"):
            panel = results[pid]
            errs = [
                abs(b - h)
                for b, h in zip(panel.x_values, panel.series["beta_hat"])
            ]
            assert max(errs) < 0.05, pid

    def test_fig04_all_positive(self, results):
        panel = results["fig04"]
        for column in panel.series.values():
            assert min(column) > 0

    def test_fig09_l_grows_with_eta(self, results):
        panel = results["fig09"]
        at_eps1 = [panel.series[f"eta={e}"][-1] for e in (0.1, 0.3, 0.5)]
        assert at_eps1[0] < at_eps1[1] < at_eps1[2]

    def test_fig10_eps2_matches_paper(self, results):
        """The xi=1 roots for L=10/L=8 land on the paper's 2.55/2.28."""
        notes = " ".join(results["fig10"].notes)
        assert "eps2=2.5" in notes or "eps2=2.6" in notes
        assert "eps2=2.2" in notes or "eps2=2.3" in notes

    def test_fig11_crosses_one_twice(self, results):
        xi = np.asarray(results["fig11"].series["xi"])
        crossings = np.sum(np.diff(np.sign(xi - 1.0)) != 0)
        assert crossings == 2

    def test_fig14_eps_grows_with_l(self, results):
        """Along a contour, larger L affords a higher threshold: xi(L, eps)
        increases in L on the decaying branch, so holding xi fixed pushes
        eps up."""
        column = results["fig14"].series["xi=1.4"]
        finite = [v for v in column if np.isfinite(v)]
        assert len(finite) >= 3
        assert finite == sorted(finite)

    def test_fig15_overhead_explodes_small_eps(self, results):
        panel = results["fig15"]
        row = panel.series["L=10"]
        assert row[0] > 10 * row[-1]


class TestTraceFigures:
    def test_fig06_eta_positive_at_low_rate(self, results):
        for pid in ("fig06a", "fig06b"):
            panel = results[pid]
            assert panel.series["eta"][0] > 0.0, pid

    def test_fig06_sampled_below_real_at_low_rate(self, results):
        panel = results["fig06a"]
        assert panel.series["sampled_mean"][0] < panel.series["real_mean"][0]

    def test_fig07_heavy_burst_tail(self, results):
        for pid in ("fig07a", "fig07b"):
            notes = " ".join(results[pid].notes)
            alpha = float(notes.split("alpha = ")[1].split(" ")[0])
            assert 0.8 < alpha < 3.0, pid

    def test_fig08_alphas_near_construction(self, results):
        notes_a = " ".join(results["fig08a"].notes)
        notes_b = " ".join(results["fig08b"].notes)
        alpha_a = float(notes_a.split("alpha = ")[1].split(" ")[0])
        alpha_b = float(notes_b.split("alpha = ")[1].split(" ")[0])
        assert alpha_a == pytest.approx(1.5, abs=0.2)
        assert alpha_b == pytest.approx(1.71, abs=0.2)

    def test_fig12_unbiased_tracks_systematic(self, results):
        panel = results["fig12a"]
        proposed = np.asarray(panel.series["proposed"])
        systematic = np.asarray(panel.series["systematic"])
        # Low-rate cells: nearly identical (few qualified samples).
        assert abs(proposed[0] - systematic[0]) < 0.25 * abs(systematic[0])

    def test_fig18_bss_closer_to_real_at_low_rates(self, results):
        panel = results["fig18"]
        real = panel.series["real_mean"][0]
        # Compare average |error| over the lowest three rates.
        bss_err = np.mean(
            [abs(v - real) for v in panel.series["proposed"][:3]]
        )
        sys_err = np.mean(
            [abs(v - real) for v in panel.series["systematic"][:3]]
        )
        assert bss_err <= sys_err * 1.25

    def test_fig18_overhead_moderate(self, results):
        panel = results["fig18"]
        overheads = panel.series["bss_overhead"]
        assert max(overheads) < 1.0

    def test_fig21_beta_preserved(self, results):
        panel = results["fig21"]
        errs = [
            abs(b - h) for b, h in zip(panel.x_values, panel.series["beta_hat"])
        ]
        assert max(errs) < 0.2

    def test_fig22_same_order_of_magnitude(self, results):
        panel = results["fig22a"]
        ratio = np.asarray(panel.series["proposed"]) / np.maximum(
            np.asarray(panel.series["systematic"]), 1e-12
        )
        assert np.median(ratio) < 10.0
