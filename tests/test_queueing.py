"""Tests for the queueing extension (Norros formula + simulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.queueing import (
    kappa,
    overflow_probability,
    queue_occupancy,
    required_buffer,
    required_capacity,
    simulate_queue,
    tail_probabilities,
    utilisation_for_load,
)
from repro.traffic.fgn import fgn_davies_harte


class TestKappa:
    def test_symmetric_maximum_at_half(self):
        assert kappa(0.5) == pytest.approx(0.5)
        assert kappa(0.3) == pytest.approx(kappa(0.7))

    def test_domain(self):
        with pytest.raises(ParameterError):
            kappa(1.0)


class TestOverflowProbability:
    def test_decreasing_in_buffer(self):
        p = overflow_probability([1.0, 10.0, 100.0], 2.0, 1.0, 0.8)
        assert np.all(np.diff(p) < 0)

    def test_lrd_tail_heavier(self):
        """For large buffers, H = 0.9 traffic overflows far more than 0.5."""
        b = 50.0
        p_srd = overflow_probability([b], 2.0, 1.0, 0.5)[0]
        p_lrd = overflow_probability([b], 2.0, 1.0, 0.9)[0]
        assert p_lrd > 100 * p_srd

    def test_h_half_is_exponential(self):
        """At H = 1/2 the exponent is linear in the buffer size."""
        p = overflow_probability([1.0, 2.0, 3.0], 2.0, 1.0, 0.5)
        logs = np.log(p)
        np.testing.assert_allclose(np.diff(logs, 2), 0.0, atol=1e-9)

    def test_unstable_queue_rejected(self):
        with pytest.raises(ParameterError, match="stability"):
            overflow_probability([1.0], 1.0, 2.0, 0.8)

    def test_zero_buffer_certain_overflow(self):
        p = overflow_probability([0.0], 2.0, 1.0, 0.8)
        assert p[0] == pytest.approx(1.0)


class TestInversions:
    def test_required_buffer_round_trip(self):
        b = required_buffer(1e-3, 2.0, 1.0, 0.8)
        p = overflow_probability([b], 2.0, 1.0, 0.8)[0]
        assert p == pytest.approx(1e-3, rel=1e-6)

    def test_required_capacity_round_trip(self):
        c = required_capacity(1e-3, 10.0, 1.0, 0.8)
        p = overflow_probability([10.0], c, 1.0, 0.8)[0]
        assert p == pytest.approx(1e-3, rel=1e-6)

    def test_higher_h_needs_more_capacity(self):
        """Under-estimating H under-provisions the link — the operational
        cost of a bad Hurst measurement."""
        c_srd = required_capacity(1e-4, 10.0, 1.0, 0.55)
        c_lrd = required_capacity(1e-4, 10.0, 1.0, 0.85)
        assert c_lrd > c_srd

    def test_domains(self):
        with pytest.raises(ParameterError):
            required_buffer(1.5, 2.0, 1.0, 0.8)
        with pytest.raises(ParameterError):
            required_capacity(0.0, 10.0, 1.0, 0.8)


class TestQueueOccupancy:
    def test_lindley_by_hand(self):
        arrivals = np.array([3.0, 0.0, 5.0, 0.0])
        occupancy = queue_occupancy(arrivals, 2.0)
        # Q: max(0+3-2,0)=1; max(1+0-2,0)=0; max(0+5-2,0)=3; max(3+0-2,0)=1.
        np.testing.assert_allclose(occupancy, [1.0, 0.0, 3.0, 1.0])

    def test_matches_explicit_loop(self, rng):
        arrivals = rng.exponential(1.0, size=500)
        occupancy = queue_occupancy(arrivals, 1.2)
        q = 0.0
        expected = []
        for a in arrivals:
            q = max(q + a - 1.2, 0.0)
            expected.append(q)
        np.testing.assert_allclose(occupancy, expected, atol=1e-9)

    def test_initial_backlog_drains(self):
        occupancy = queue_occupancy(np.zeros(10), 1.0, initial=5.0)
        np.testing.assert_allclose(occupancy[:5], [4, 3, 2, 1, 0])
        np.testing.assert_allclose(occupancy[5:], 0.0)

    def test_never_negative(self, rng):
        occupancy = queue_occupancy(rng.exponential(1.0, 1000), 5.0)
        assert occupancy.min() >= 0

    def test_invalid_initial(self):
        with pytest.raises(ParameterError):
            queue_occupancy(np.ones(4), 1.0, initial=-1.0)


class TestSimulateQueue:
    def test_stats_consistency(self, rng):
        arrivals = rng.exponential(1.0, 10_000)
        stats = simulate_queue(arrivals, 1.5)
        assert 0 < stats.utilisation < 1
        assert stats.mean_queue <= stats.p99_queue <= stats.max_queue

    def test_lrd_queue_worse_than_srd(self, rng_factory):
        """Same marginal, same load: the H = 0.9 queue is much fuller —
        the operational fact the paper's Hurst focus is about."""
        mean, capacity = 5.0, 6.0
        srd = mean + fgn_davies_harte(1 << 16, 0.5, rng_factory(1))
        lrd = mean + fgn_davies_harte(1 << 16, 0.9, rng_factory(2))
        q_srd = simulate_queue(np.maximum(srd, 0.0), capacity)
        q_lrd = simulate_queue(np.maximum(lrd, 0.0), capacity)
        assert q_lrd.mean_queue > 3 * q_srd.mean_queue

    def test_norros_shape_agreement(self, rng):
        """Empirical log-tail of an fGn-fed queue is concave-ish like the
        Weibull tail Norros predicts; check tail ordering at two buffers."""
        mean, capacity, h = 5.0, 6.0, 0.8
        arrivals = np.maximum(mean + fgn_davies_harte(1 << 17, h, rng), 0.0)
        occupancy = queue_occupancy(arrivals, capacity)
        thresholds = np.array([1.0, 4.0])
        empirical = tail_probabilities(occupancy, thresholds)
        predicted = overflow_probability(thresholds, capacity, mean, h)
        # Both must decrease, and the empirical decay should be in the same
        # ballpark (within a decade) as the prediction at the larger buffer.
        assert empirical[1] < empirical[0]
        assert abs(np.log10(empirical[1] + 1e-6) - np.log10(predicted[1])) < 1.5


class TestHelpers:
    def test_tail_probabilities(self):
        occupancy = np.array([0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(
            tail_probabilities(occupancy, [0.5, 2.5]), [0.75, 0.25]
        )

    def test_utilisation_for_load(self):
        assert utilisation_for_load(5.0, 0.8) == pytest.approx(6.25)
        with pytest.raises(ParameterError):
            utilisation_for_load(5.0, 1.0)
