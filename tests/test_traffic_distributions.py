"""Tests for repro.traffic.distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.traffic.distributions import (
    Exponential,
    Pareto,
    TruncatedPareto,
    hurst_for_pareto_alpha,
    pareto_alpha_for_hurst,
)


class TestParetoBasics:
    def test_ccdf_at_scale_is_one(self):
        p = Pareto(scale=2.0, alpha=1.5)
        assert p.ccdf(2.0) == pytest.approx(1.0)

    def test_ccdf_power_law(self):
        p = Pareto(scale=1.0, alpha=1.5)
        assert p.ccdf(4.0) == pytest.approx(4.0**-1.5)

    def test_ccdf_below_scale(self):
        p = Pareto(scale=3.0, alpha=1.2)
        assert p.ccdf(1.0) == pytest.approx(1.0)

    def test_cdf_complements_ccdf(self):
        p = Pareto(scale=1.0, alpha=1.7)
        x = np.array([1.0, 2.0, 10.0, 100.0])
        np.testing.assert_allclose(p.cdf(x) + p.ccdf(x), 1.0)

    def test_pdf_integrates_to_one(self):
        p = Pareto(scale=1.0, alpha=1.5)
        x = np.linspace(1.0, 5000.0, 2_000_001)
        integral = np.trapezoid(p.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=5e-3)

    def test_ppf_inverts_cdf(self):
        p = Pareto(scale=2.0, alpha=1.3)
        q = np.array([0.0, 0.25, 0.5, 0.9, 0.999])
        np.testing.assert_allclose(p.cdf(p.ppf(q)), q, atol=1e-12)

    def test_ppf_rejects_one(self):
        p = Pareto(scale=1.0, alpha=1.5)
        with pytest.raises(ParameterError):
            p.ppf(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            Pareto(scale=0.0, alpha=1.5)
        with pytest.raises(ParameterError):
            Pareto(scale=1.0, alpha=-1.0)


class TestParetoMoments:
    def test_mean_formula(self):
        p = Pareto(scale=1.0, alpha=1.5)
        assert p.mean == pytest.approx(3.0)

    def test_mean_infinite_for_alpha_le_1(self):
        assert math.isinf(Pareto(scale=1.0, alpha=1.0).mean)
        assert math.isinf(Pareto(scale=1.0, alpha=0.9).mean)

    def test_variance_infinite_in_paper_regime(self):
        assert math.isinf(Pareto(scale=1.0, alpha=1.5).variance)

    def test_variance_finite_above_two(self):
        p = Pareto(scale=1.0, alpha=3.0)
        assert p.variance == pytest.approx(3.0 / (4.0 * 1.0))

    def test_mean_above_threshold(self):
        """E[X | X > t] = t*alpha/(alpha-1) — the BSS qualified-sample mean."""
        p = Pareto(scale=1.0, alpha=1.5)
        assert p.mean_above(10.0) == pytest.approx(30.0)

    def test_mean_above_below_scale_clamps(self):
        p = Pareto(scale=2.0, alpha=1.5)
        assert p.mean_above(1.0) == pytest.approx(p.mean)

    def test_mean_below_threshold_monte_carlo(self, rng):
        p = Pareto(scale=1.0, alpha=1.5)
        x = p.sample(200_000, rng)
        t = 5.0
        empirical = x[x <= t].mean()
        assert p.mean_below(t) == pytest.approx(empirical, rel=0.02)

    def test_law_of_total_expectation(self):
        """p*E[X|X>t] + (1-p)*E[X|X<=t] = E[X] — paper Eqs. (24)-(27)."""
        p = Pareto(scale=1.0, alpha=1.4)
        t = 7.0
        tail = p.ccdf(t).item()
        total = tail * p.mean_above(t) + (1 - tail) * p.mean_below(t)
        assert total == pytest.approx(p.mean, rel=1e-9)

    def test_from_mean_round_trip(self):
        p = Pareto.from_mean(5.68, 1.5)
        assert p.mean == pytest.approx(5.68)

    def test_from_mean_rejects_alpha_le_1(self):
        with pytest.raises(ParameterError):
            Pareto.from_mean(5.0, 1.0)


class TestParetoSampling:
    def test_samples_respect_scale(self, rng):
        p = Pareto(scale=3.0, alpha=1.5)
        x = p.sample(10_000, rng)
        assert x.min() >= 3.0

    def test_sample_ccdf_matches(self, rng):
        p = Pareto(scale=1.0, alpha=1.5)
        x = p.sample(100_000, rng)
        assert (x > 10.0).mean() == pytest.approx(p.ccdf(10.0).item(), rel=0.1)

    def test_deterministic_given_seed(self):
        p = Pareto(scale=1.0, alpha=1.5)
        np.testing.assert_array_equal(p.sample(10, 5), p.sample(10, 5))

    @given(st.floats(1.1, 1.9), st.floats(0.5, 10.0))
    @settings(max_examples=25, deadline=None)
    def test_sample_min_property(self, alpha, scale):
        p = Pareto(scale=scale, alpha=alpha)
        x = p.sample(500, 1)
        assert x.min() >= scale


class TestTruncatedPareto:
    def test_support(self, rng):
        t = TruncatedPareto(scale=1.0, alpha=1.5, upper=50.0)
        x = t.sample(20_000, rng)
        assert x.min() >= 1.0
        assert x.max() <= 50.0

    def test_ccdf_boundaries(self):
        t = TruncatedPareto(scale=1.0, alpha=1.5, upper=50.0)
        assert t.ccdf(1.0) == pytest.approx(1.0)
        assert t.ccdf(50.0) == pytest.approx(0.0)

    def test_mean_finite_and_below_pareto(self):
        t = TruncatedPareto(scale=1.0, alpha=1.5, upper=50.0)
        p = Pareto(scale=1.0, alpha=1.5)
        assert t.mean < p.mean

    def test_mean_matches_monte_carlo(self, rng):
        t = TruncatedPareto(scale=1.0, alpha=1.5, upper=50.0)
        x = t.sample(200_000, rng)
        assert x.mean() == pytest.approx(t.mean, rel=0.02)

    def test_invalid_upper(self):
        with pytest.raises(ParameterError):
            TruncatedPareto(scale=2.0, alpha=1.5, upper=1.0)


class TestExponential:
    def test_mean(self, rng):
        e = Exponential(rate=0.5)
        assert e.mean == pytest.approx(2.0)
        x = e.sample(100_000, rng)
        assert x.mean() == pytest.approx(2.0, rel=0.03)

    def test_ccdf(self):
        e = Exponential(rate=1.0)
        assert e.ccdf(1.0) == pytest.approx(math.exp(-1.0))
        assert e.ccdf(-1.0) == pytest.approx(1.0)

    def test_invalid_rate(self):
        with pytest.raises(ParameterError):
            Exponential(rate=0.0)


class TestHurstAlphaMap:
    def test_paper_mapping(self):
        """H = 0.8 <-> alpha = 1.4, the paper's Section IV configuration."""
        assert pareto_alpha_for_hurst(0.8) == pytest.approx(1.4)
        assert hurst_for_pareto_alpha(1.4) == pytest.approx(0.8)

    @given(st.floats(0.51, 0.99))
    def test_round_trip(self, h):
        assert hurst_for_pareto_alpha(pareto_alpha_for_hurst(h)) == pytest.approx(h)

    def test_domain_errors(self):
        with pytest.raises(ParameterError):
            pareto_alpha_for_hurst(0.5)
        with pytest.raises(ParameterError):
            hurst_for_pareto_alpha(2.0)
