"""Tests for repro.traffic.fgn — both generators against exact theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.traffic.fgn import fbm, fgn_autocovariance, fgn_davies_harte, fgn_hosking


def empirical_acf(x: np.ndarray, lag: int) -> float:
    x = x - x.mean()
    return float(np.dot(x[:-lag], x[lag:]) / np.dot(x, x))


class TestAutocovariance:
    def test_lag_zero_is_variance(self):
        gamma = fgn_autocovariance(0.7, 5, sigma=2.0)
        assert gamma[0] == pytest.approx(4.0)

    def test_white_noise_case(self):
        """H = 0.5 must give exactly zero covariance at positive lags."""
        gamma = fgn_autocovariance(0.5, 10)
        np.testing.assert_allclose(gamma[1:], 0.0, atol=1e-12)

    def test_positive_correlation_for_lrd(self):
        gamma = fgn_autocovariance(0.8, 50)
        assert np.all(gamma[1:] > 0)

    def test_negative_correlation_for_antipersistent(self):
        gamma = fgn_autocovariance(0.3, 10)
        assert np.all(gamma[1:] < 0)

    def test_hyperbolic_tail_exponent(self):
        """gamma(k) ~ H(2H-1) k^(2H-2): check the log-log slope at large k."""
        h = 0.8
        gamma = fgn_autocovariance(h, 4096)
        k = np.arange(1000, 4096)
        slope = np.polyfit(np.log(k), np.log(gamma[k]), 1)[0]
        assert slope == pytest.approx(2 * h - 2, abs=0.01)

    def test_invalid_hurst(self):
        with pytest.raises(ParameterError):
            fgn_autocovariance(1.0, 4)
        with pytest.raises(ParameterError):
            fgn_autocovariance(0.0, 4)


class TestDaviesHarte:
    def test_length(self, rng):
        assert fgn_davies_harte(1000, 0.7, rng).size == 1000

    def test_single_point(self, rng):
        assert fgn_davies_harte(1, 0.7, rng).size == 1

    def test_deterministic_given_seed(self):
        a = fgn_davies_harte(256, 0.8, 42)
        b = fgn_davies_harte(256, 0.8, 42)
        np.testing.assert_array_equal(a, b)

    def test_unit_variance(self, rng):
        x = fgn_davies_harte(1 << 16, 0.8, rng)
        assert x.var() == pytest.approx(1.0, abs=0.08)

    def test_sigma_scaling(self, rng):
        x = fgn_davies_harte(1 << 15, 0.7, rng, sigma=3.0)
        assert x.std() == pytest.approx(3.0, rel=0.08)

    def test_zero_mean(self, rng):
        # The sample-mean std of LRD fGn decays only as n^(H-1) ≈ 0.11 at
        # this length; bound at ~3 sigma.
        x = fgn_davies_harte(1 << 16, 0.8, rng)
        assert abs(x.mean()) < 0.33

    @pytest.mark.parametrize("h", [0.55, 0.7, 0.9])
    def test_lag_one_correlation_matches_theory(self, h, rng):
        # Empirical ACF of an LRD series is biased low by the sample-mean
        # estimate; the bias grows with H, hence the asymmetric tolerance.
        x = fgn_davies_harte(1 << 16, h, rng)
        gamma = fgn_autocovariance(h, 2)
        assert empirical_acf(x, 1) == pytest.approx(gamma[1] / gamma[0], abs=0.06)

    def test_white_noise_uncorrelated(self, rng):
        x = fgn_davies_harte(1 << 15, 0.5, rng)
        assert abs(empirical_acf(x, 1)) < 0.03

    def test_aggregated_variance_slope(self, rng):
        """var(f^(m)) ~ m^(2H-2): the defining self-similarity scaling."""
        h = 0.8
        x = fgn_davies_harte(1 << 17, h, rng)
        ms = [1, 2, 4, 8, 16, 32, 64]
        variances = [
            x[: x.size // m * m].reshape(-1, m).mean(axis=1).var() for m in ms
        ]
        slope = np.polyfit(np.log(ms), np.log(variances), 1)[0]
        assert slope == pytest.approx(2 * h - 2, abs=0.1)

    def test_antipersistent_hurst_supported(self, rng):
        x = fgn_davies_harte(4096, 0.3, rng)
        assert empirical_acf(x, 1) < 0.0


class TestHosking:
    def test_length_and_determinism(self):
        a = fgn_hosking(128, 0.8, 7)
        b = fgn_hosking(128, 0.8, 7)
        assert a.size == 128
        np.testing.assert_array_equal(a, b)

    def test_single_point(self, rng):
        assert fgn_hosking(1, 0.6, rng).size == 1

    def test_variance(self, rng):
        x = fgn_hosking(4096, 0.75, rng)
        assert x.var() == pytest.approx(1.0, abs=0.15)

    def test_lag_one_matches_theory(self, rng):
        h = 0.8
        x = fgn_hosking(8192, h, rng)
        gamma = fgn_autocovariance(h, 2)
        assert empirical_acf(x, 1) == pytest.approx(gamma[1] / gamma[0], abs=0.05)

    def test_agrees_with_davies_harte_distribution(self, rng_factory):
        """The two exact generators must agree in distribution.

        Each sample is standardized first because the sample mean of an LRD
        path fluctuates as n^(H-1); after standardization the quantile
        *shapes* must line up within sampling noise.
        """
        h = 0.7
        a = fgn_hosking(4096, h, rng_factory(1))
        b = fgn_davies_harte(4096, h, rng_factory(2))
        a = (a - a.mean()) / a.std()
        b = (b - b.mean()) / b.std()
        quantiles = [0.1, 0.25, 0.5, 0.75, 0.9]
        np.testing.assert_allclose(
            np.quantile(a, quantiles), np.quantile(b, quantiles), atol=0.12
        )


class TestFbm:
    def test_fbm_is_cumsum_of_fgn(self):
        path = fbm(512, 0.7, 3)
        increments = np.diff(np.concatenate([[0.0], path]))
        np.testing.assert_allclose(
            increments, fgn_davies_harte(512, 0.7, 3), atol=1e-12
        )

    def test_self_similar_scaling(self, rng):
        """Var(B_H(t)) = t^(2H): variance ratio over a 4x horizon is 4^(2H)."""
        h = 0.8
        n = 1 << 14
        paths = np.array([fbm(n, h, child) for child in rng.spawn(64)])
        v1 = paths[:, n // 4 - 1].var()
        v2 = paths[:, n - 1].var()
        estimated_2h = np.log(v2 / v1) / np.log(4.0)
        assert estimated_2h == pytest.approx(2 * h, abs=0.4)
