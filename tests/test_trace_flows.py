"""Tests for repro.trace.flows."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.trace.flows import FlowTable, aggregate_flows, od_flow_trace
from repro.trace.packet import PacketTrace


def sample_trace() -> PacketTrace:
    return PacketTrace(
        timestamps=[0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        sources=[1, 1, 2, 1, 2, 3],
        destinations=[2, 2, 3, 2, 3, 1],
        sizes=[100, 200, 300, 400, 500, 600],
    )


class TestFlowTable:
    def test_flow_count(self):
        table = FlowTable(sample_trace())
        assert len(table) == 3

    def test_membership(self):
        table = FlowTable(sample_trace())
        assert (1, 2) in table
        assert (9, 9) not in table

    def test_per_flow_stats(self):
        table = FlowTable(sample_trace())
        flow = table[(1, 2)]
        assert flow.packets == 3
        assert flow.bytes == 700
        assert flow.first_seen == pytest.approx(0.0)
        assert flow.last_seen == pytest.approx(3.0)
        assert flow.duration == pytest.approx(3.0)
        assert flow.mean_rate == pytest.approx(700 / 3.0)

    def test_instantaneous_flow_rate_zero(self):
        table = FlowTable(sample_trace())
        assert table[(3, 1)].mean_rate == 0.0

    def test_top_flows_by_bytes(self):
        table = FlowTable(sample_trace())
        top = table.top_flows(2)
        assert top[0].od_pair == (2, 3)  # 800 bytes
        assert top[1].od_pair == (1, 2)  # 700 bytes

    def test_top_flows_by_packets(self):
        table = FlowTable(sample_trace())
        top = table.top_flows(1, by="packets")
        assert top[0].od_pair == (1, 2)

    def test_top_flows_invalid_key(self):
        with pytest.raises(ParameterError):
            FlowTable(sample_trace()).top_flows(1, by="rate")

    def test_total_bytes_matches_trace(self):
        table = FlowTable(sample_trace())
        assert table.total_bytes() == sample_trace().total_bytes

    def test_pairs_listing(self):
        table = FlowTable(sample_trace())
        assert set(table.pairs) == {(1, 2), (2, 3), (3, 1)}

    def test_iteration(self):
        table = FlowTable(sample_trace())
        assert sum(f.packets for f in table) == 6


class TestOdFlowExtraction:
    def test_od_flow_trace(self):
        sub = od_flow_trace(sample_trace(), [(2, 3)])
        assert len(sub) == 2
        assert sub.total_bytes == 800

    def test_aggregate_flows_multiple(self):
        agg = aggregate_flows(sample_trace(), [(1, 2), (3, 1)])
        assert len(agg) == 4
        assert agg.total_bytes == 1300

    def test_aggregate_preserves_time_order(self):
        agg = aggregate_flows(sample_trace(), [(1, 2), (2, 3)])
        assert list(agg.timestamps) == sorted(agg.timestamps)
