"""Tests for the renewal framework and the Theorem 1 (SNC) checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.renewal import IntervalDistribution
from repro.core.snc import sampled_acf_via_renewal, snc_check, snc_sweep
from repro.errors import ParameterError


class TestIntervalDistribution:
    def test_deterministic(self):
        dist = IntervalDistribution.deterministic(10)
        assert dist.mean == pytest.approx(10.0)
        assert dist.variance == pytest.approx(0.0)
        assert dist.implied_rate == pytest.approx(0.1)
        assert dist.pmf[10] == pytest.approx(1.0)

    def test_stratified_mean_is_interval(self):
        """E[C + U2 - U1] = C."""
        dist = IntervalDistribution.stratified(10)
        assert dist.mean == pytest.approx(10.0)
        assert dist.name == "stratified"

    def test_stratified_triangular_peak(self):
        dist = IntervalDistribution.stratified(5)
        assert np.argmax(dist.pmf) == 5
        # Symmetric around C.
        np.testing.assert_allclose(dist.pmf[5 - 3], dist.pmf[5 + 3])

    def test_stratified_support(self):
        """Gaps range over {1, ..., 2C-1}: consecutive picks cannot collide."""
        dist = IntervalDistribution.stratified(4)
        assert dist.pmf[0] == 0.0
        assert dist.pmf.size == 8  # support up to 2C-1

    def test_geometric_mean(self):
        """E[T] = 1/r for the geometric gap law (Eq. 13)."""
        dist = IntervalDistribution.geometric(0.1)
        assert dist.mean == pytest.approx(10.0, rel=1e-3)

    def test_geometric_pmf_form(self):
        dist = IntervalDistribution.geometric(0.25)
        assert dist.pmf[1] == pytest.approx(0.25, rel=1e-6)
        assert dist.pmf[2] == pytest.approx(0.25 * 0.75, rel=1e-6)

    def test_geometric_rate_one(self):
        dist = IntervalDistribution.geometric(1.0)
        assert dist.pmf[1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            IntervalDistribution(pmf=np.array([0.5, 0.5]))  # gap 0 mass
        with pytest.raises(ParameterError):
            IntervalDistribution(pmf=np.array([0.0, -0.1, 1.1]))
        with pytest.raises(ParameterError):
            IntervalDistribution(pmf=np.array([0.0, 0.5]))  # sums to 0.5


class TestConvolutionPower:
    def test_deterministic_convolution_is_shifted_delta(self):
        dist = IntervalDistribution.deterministic(5)
        k = dist.convolution_power(3)
        assert np.argmax(k) == 15
        assert k[15] == pytest.approx(1.0, abs=1e-9)

    def test_mass_conserved(self):
        dist = IntervalDistribution.stratified(6)
        k = dist.convolution_power(4)
        assert k.sum() == pytest.approx(1.0, abs=1e-9)

    def test_mean_adds(self):
        """E[sum of tau gaps] = tau * E[T]."""
        dist = IntervalDistribution.geometric(0.2)
        tau = 7
        k = dist.convolution_power(tau)
        mean = np.dot(np.arange(k.size), k)
        assert mean == pytest.approx(tau * dist.mean, rel=1e-6)

    def test_matches_monte_carlo(self, rng):
        dist = IntervalDistribution.stratified(4)
        tau = 5
        k = dist.convolution_power(tau)
        sums = dist.sample_gaps((2000, tau), rng).sum(axis=1)
        for u in (15, 20, 25):
            assert k[u] == pytest.approx((sums == u).mean(), abs=0.05)

    def test_undersized_fft_rejected(self):
        dist = IntervalDistribution.stratified(8)
        with pytest.raises(ParameterError, match="alias"):
            dist.convolution_power(10, size=32)

    def test_tau_one_is_pmf(self):
        dist = IntervalDistribution.geometric(0.3)
        np.testing.assert_allclose(
            dist.convolution_power(1)[: dist.pmf.size], dist.pmf, atol=1e-10
        )


class TestSncCheck:
    @pytest.mark.parametrize("beta", [0.1, 0.4, 0.8])
    def test_systematic_preserves_beta(self, beta):
        result = snc_check(IntervalDistribution.deterministic(10), beta)
        assert result.preserved()
        assert result.beta_hat == pytest.approx(beta, abs=0.02)

    @pytest.mark.parametrize("beta", [0.1, 0.4, 0.8])
    def test_fig3a_stratified_preserves_beta(self, beta):
        result = snc_check(IntervalDistribution.stratified(10), beta)
        assert result.preserved()

    @pytest.mark.parametrize("beta", [0.1, 0.4, 0.8])
    def test_fig3b_simple_random_preserves_beta(self, beta):
        result = snc_check(IntervalDistribution.geometric(0.1), beta)
        assert result.preserved()

    def test_result_carries_hurst(self):
        result = snc_check(IntervalDistribution.deterministic(5), 0.4)
        assert result.hurst == pytest.approx(0.8)
        assert result.hurst_hat == pytest.approx(0.8, abs=0.02)

    def test_heavy_tailed_gaps_break_snc(self):
        """A sanity counterpoint: gap laws with slowly decaying tails skew
        the fitted exponent away from beta — the SNC is not vacuous."""
        support = np.arange(513, dtype=np.float64)
        pmf = np.zeros(513)
        pmf[1:] = support[1:] ** -1.5  # very heavy gap tail
        pmf /= pmf.sum()
        heavy = IntervalDistribution(pmf=pmf, name="heavy")
        result = snc_check(heavy, 0.8, taus=np.arange(4, 40))
        assert abs(result.beta_hat - 0.8) > 0.05

    def test_sweep(self):
        results = snc_sweep(
            IntervalDistribution.stratified(10), [0.2, 0.5, 0.8]
        )
        assert [round(r.beta, 1) for r in results] == [0.2, 0.5, 0.8]
        assert all(r.preserved() for r in results)


class TestSampledAcfViaRenewal:
    def test_systematic_closed_form(self):
        """For deterministic gaps, sum_u R_f(u) k(u, tau) = (C tau)^-beta."""
        dist = IntervalDistribution.deterministic(8)
        taus = np.array([10, 20])
        acf = sampled_acf_via_renewal(dist, 0.5, taus)
        np.testing.assert_allclose(acf, (8.0 * taus) ** -0.5, rtol=1e-6)

    def test_invalid_tau(self):
        with pytest.raises(ParameterError):
            sampled_acf_via_renewal(
                IntervalDistribution.deterministic(4), 0.5, [0]
            )
