"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    normalize_rng,
    spawn_rngs,
    split_sequence,
    stream_for,
)


class TestNormalizeRng:
    def test_none_gives_generator(self):
        assert isinstance(normalize_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = normalize_rng(7).random(4)
        b = normalize_rng(7).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(3)
        assert normalize_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(11)
        out = normalize_rng(seq)
        assert isinstance(out, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="rng must be"):
            normalize_rng("seed")

    def test_different_seeds_differ(self):
        a = normalize_rng(1).random(8)
        b = normalize_rng(2).random(8)
        assert not np.allclose(a, b)


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].random(16)
        b = children[1].random(16)
        assert not np.allclose(a, b)

    def test_deterministic_given_seed(self):
        a = spawn_rngs(9, 3)[2].random(4)
        b = spawn_rngs(9, 3)[2].random(4)
        np.testing.assert_array_equal(a, b)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)


class TestStreamFor:
    def test_same_name_same_stream(self):
        a = stream_for("fig05", 1).random(4)
        b = stream_for("fig05", 1).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        a = stream_for("fig05", 1).random(8)
        b = stream_for("fig06", 1).random(8)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = stream_for("fig05", 1).random(8)
        b = stream_for("fig05", 2).random(8)
        assert not np.allclose(a, b)


class TestChoiceWithoutReplacement:
    def test_sorted_unique(self):
        gen = np.random.default_rng(0)
        picked = choice_without_replacement(gen, 100, 20)
        assert picked.size == 20
        assert np.all(np.diff(picked) > 0)

    def test_full_population(self):
        gen = np.random.default_rng(0)
        picked = choice_without_replacement(gen, 5, 5)
        np.testing.assert_array_equal(picked, np.arange(5))

    def test_oversample_rejected(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError, match="cannot draw"):
            choice_without_replacement(gen, 3, 4)


class TestSplitSequence:
    def test_labels_present(self):
        streams = split_sequence(5, ["a", "b"])
        assert set(streams) == {"a", "b"}

    def test_streams_independent(self):
        streams = split_sequence(5, ["a", "b"])
        assert not np.allclose(streams["a"].random(8), streams["b"].random(8))
