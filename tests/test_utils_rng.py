"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    copy_sequence,
    normalize_rng,
    spawn_rngs,
    split_sequence,
    stream_for,
)


class TestNormalizeRng:
    def test_none_gives_generator(self):
        assert isinstance(normalize_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = normalize_rng(7).random(4)
        b = normalize_rng(7).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(3)
        assert normalize_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(11)
        out = normalize_rng(seq)
        assert isinstance(out, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="rng must be"):
            normalize_rng("seed")

    def test_different_seeds_differ(self):
        a = normalize_rng(1).random(8)
        b = normalize_rng(2).random(8)
        assert not np.allclose(a, b)


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].random(16)
        b = children[1].random(16)
        assert not np.allclose(a, b)

    def test_deterministic_given_seed(self):
        a = spawn_rngs(9, 3)[2].random(4)
        b = spawn_rngs(9, 3)[2].random(4)
        np.testing.assert_array_equal(a, b)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    # --- edge cases surfaced by the sharded ensemble engine -------------
    def test_zero_count_every_spec_type(self):
        """An empty shard plan spawns nothing for any accepted rng spec."""
        assert spawn_rngs(None, 0) == []
        assert spawn_rngs(7, 0) == []
        assert spawn_rngs(np.random.SeedSequence(7), 0) == []
        assert spawn_rngs(np.random.default_rng(7), 0) == []

    def test_zero_count_still_validates_spec(self):
        with pytest.raises(TypeError, match="rng must be"):
            spawn_rngs("bad-spec", 0)

    def test_zero_count_does_not_consume_parent(self):
        """n=0 shards must not advance a Generator parent's spawn state."""
        gen_a = np.random.default_rng(3)
        gen_b = np.random.default_rng(3)
        spawn_rngs(gen_a, 0)
        a = spawn_rngs(gen_a, 2)[0].random(4)
        b = spawn_rngs(gen_b, 2)[0].random(4)
        np.testing.assert_array_equal(a, b)

    def test_seed_sequence_reuse_is_deterministic(self):
        """A SeedSequence parent is a value: respawning yields the same
        children, so shard plans rebuilt from one spec agree."""
        seq = np.random.SeedSequence(42)
        first = [g.random(4) for g in spawn_rngs(seq, 3)]
        second = [g.random(4) for g in spawn_rngs(seq, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_seed_sequence_not_consumed(self):
        seq = np.random.SeedSequence(42)
        spawn_rngs(seq, 5)
        assert seq.n_children_spawned == 0

    def test_consumed_seed_sequence_spawns_same_children(self):
        """Even a sequence whose spawn counter was advanced elsewhere
        derives children from its seed data alone."""
        fresh = np.random.SeedSequence(42)
        consumed = np.random.SeedSequence(42)
        consumed.spawn(7)  # simulate prior use by another component
        a = spawn_rngs(fresh, 2)[1].random(4)
        b = spawn_rngs(consumed, 2)[1].random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_parent_still_stateful(self):
        """Generator parents keep sequential spawn semantics: successive
        calls yield fresh, non-overlapping streams."""
        gen = np.random.default_rng(3)
        a = spawn_rngs(gen, 2)[0].random(8)
        b = spawn_rngs(gen, 2)[0].random(8)
        assert not np.allclose(a, b)


class TestCopySequence:
    def test_same_seed_data(self):
        seq = np.random.SeedSequence(9, spawn_key=(2,))
        copy = copy_sequence(seq)
        assert copy is not seq
        assert copy.entropy == seq.entropy
        assert copy.spawn_key == seq.spawn_key
        np.testing.assert_array_equal(
            copy.generate_state(4), seq.generate_state(4)
        )

    def test_copy_spawn_does_not_touch_original(self):
        seq = np.random.SeedSequence(9)
        copy_sequence(seq).spawn(3)
        assert seq.n_children_spawned == 0


class TestStreamFor:
    def test_same_name_same_stream(self):
        a = stream_for("fig05", 1).random(4)
        b = stream_for("fig05", 1).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        a = stream_for("fig05", 1).random(8)
        b = stream_for("fig06", 1).random(8)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = stream_for("fig05", 1).random(8)
        b = stream_for("fig05", 2).random(8)
        assert not np.allclose(a, b)

    # --- edge cases surfaced by the sharded ensemble engine -------------
    def test_negative_seed_accepted(self):
        """Sharded sweeps derive labelled seeds arithmetically; negative
        intermediate seeds must map to a valid deterministic stream."""
        a = stream_for("shard:0", -3).random(4)
        b = stream_for("shard:0", -3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_negative_and_positive_seeds_differ(self):
        a = stream_for("shard:0", -3).random(8)
        b = stream_for("shard:0", 3).random(8)
        assert not np.allclose(a, b)

    def test_huge_seed_accepted(self):
        a = stream_for("shard:1", 2**80 + 5).random(4)
        b = stream_for("shard:1", 2**80 + 5).random(4)
        np.testing.assert_array_equal(a, b)

    def test_empty_name_accepted(self):
        a = stream_for("", 1).random(4)
        b = stream_for("", 1).random(4)
        np.testing.assert_array_equal(a, b)


class TestChoiceWithoutReplacement:
    def test_sorted_unique(self):
        gen = np.random.default_rng(0)
        picked = choice_without_replacement(gen, 100, 20)
        assert picked.size == 20
        assert np.all(np.diff(picked) > 0)

    def test_full_population(self):
        gen = np.random.default_rng(0)
        picked = choice_without_replacement(gen, 5, 5)
        np.testing.assert_array_equal(picked, np.arange(5))

    def test_oversample_rejected(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError, match="cannot draw"):
            choice_without_replacement(gen, 3, 4)


class TestSplitSequence:
    def test_labels_present(self):
        streams = split_sequence(5, ["a", "b"])
        assert set(streams) == {"a", "b"}

    def test_streams_independent(self):
        streams = split_sequence(5, ["a", "b"])
        assert not np.allclose(streams["a"].random(8), streams["b"].random(8))
