"""PoolRuntime: the session-scoped persistent worker pool.

Pins the PR 4 tentpole contracts: one fork amortized across calls,
recycle on config change, idle teardown, loud serial degradation when no
pool can be created, and — the trace-visibility half — publishes made
*after* the pool forked switch to the attach-by-name ``shm`` backend so
persistent workers still see the parent's bits.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.parallel.executor as executor
import repro.parallel.runtime as runtime_module
from repro.errors import ParameterError
from repro.parallel import (
    PoolRuntime,
    active_runtime,
    pool_runtime,
    run_shards,
    start_runtime,
    stop_runtime,
)
from repro.parallel.runtime import attach_preferred, runtime_mode_from_env
from repro.trace.store import _PUBLISHED, TraceStore

SEED = 20260726


def _pid(_):
    return os.getpid()


def _registry_view(handle):
    """What a worker sees: (was it fork-inherited?, the attached sum)."""
    return (handle.ref in _PUBLISHED, float(handle.values().sum()))


def _fail(x):
    raise ValueError(f"worker exploded on {x}")


def _double(x):
    return 2 * x


def _child_runtime_state(_):
    """Fresh-forked worker: what does the inherited runtime look like?"""
    return active_runtime() is None


def _nested_run_shards(x):
    """Worker that itself dispatches — must degrade, never deadlock."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_shards(_double, [(x,), (x + 1,)], workers=2)


class TestPoolReuse:
    def test_pool_forked_lazily_and_reused(self):
        with pool_runtime() as rt:
            assert not rt.has_live_pool()  # nothing forked yet
            first = run_shards(_pid, [(i,) for i in range(4)], workers=2)
            assert rt.has_live_pool()
            assert rt.forks == 1
            second = run_shards(_pid, [(i,) for i in range(4)], workers=2)
            assert rt.forks == 1  # same pool, no second fork
            assert set(first) & set(second)  # literally the same processes
        assert not rt.has_live_pool()  # scope exit tears down

    def test_scope_restores_previous_runtime(self):
        assert active_runtime() is None
        with pool_runtime() as outer:
            assert active_runtime() is outer
            with pool_runtime() as inner:
                assert active_runtime() is inner
            assert active_runtime() is outer
        assert active_runtime() is None

    def test_start_stop_runtime(self):
        rt = start_runtime(workers=2)
        try:
            assert active_runtime() is rt
        finally:
            stop_runtime()
        assert active_runtime() is None
        stop_runtime()  # idempotent

    def test_grow_on_bigger_request_recycles(self):
        with pool_runtime() as rt:
            run_shards(_pid, [(1,), (2,)], workers=2)
            assert rt.pool_size == 2
            run_shards(_pid, [(i,) for i in range(6)], workers=4)
            assert rt.forks == 2  # recycled into a bigger pool
            assert rt.pool_size == 4
            run_shards(_pid, [(1,), (2,)], workers=2)
            assert rt.forks == 2  # smaller requests reuse the larger pool

    def test_workers_cap_respected(self):
        with pool_runtime(workers=2) as rt:
            run_shards(_pid, [(i,) for i in range(8)], workers=6)
            assert rt.pool_size == 2

    def test_worker_exceptions_propagate_and_pool_survives(self):
        with pool_runtime() as rt:
            with pytest.raises(ValueError, match="worker exploded"):
                run_shards(_fail, [(1,), (2,)], workers=2)
            assert run_shards(_pid, [(1,), (2,)], workers=2)
            assert rt.forks == 1

    def test_restart_forces_new_pool(self):
        with pool_runtime() as rt:
            run_shards(_pid, [(1,), (2,)], workers=2)
            rt.restart()
            assert not rt.has_live_pool()
            run_shards(_pid, [(1,), (2,)], workers=2)
            assert rt.forks == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ParameterError, match="workers"):
            PoolRuntime(0)
        with pytest.raises(ParameterError, match="idle_timeout"):
            PoolRuntime(idle_timeout=0)

    def test_small_dispatch_does_not_grow_pool(self):
        """A 2-task call at workers=8 must not recycle a 2-process pool."""
        with pool_runtime() as rt:
            run_shards(_pid, [(1,), (2,)], workers=2)
            assert rt.pool_size == 2
            run_shards(_pid, [(1,), (2,)], workers=8)  # capped at len(tasks)
            assert rt.forks == 1
            assert rt.pool_size == 2


class TestForkedChildren:
    """A forked child inherits the runtime global but must never use it:
    the pool's handler threads did not survive the fork."""

    def test_child_sees_no_runtime(self):
        with pool_runtime() as rt:
            run_shards(_pid, [(1,), (2,)], workers=2)  # pool live in parent
            assert rt.has_live_pool()
            # Fresh-forked children (the parallel_rows path) fork while
            # the pool is live; active_runtime() must be None for them.
            assert run_shards(
                _child_runtime_state, [(1,), (2,)],
                workers=2, fresh_pool=True,
            ) == [True, True]

    def test_nested_dispatch_degrades_serially_not_deadlocks(self):
        with pool_runtime():
            results = run_shards(
                _nested_run_shards, [(1,), (5,)], workers=2, fresh_pool=True
            )
        assert results == [[2, 4], [10, 12]]

    def test_owner_pid_guard(self, monkeypatch):
        with pool_runtime() as rt:
            monkeypatch.setattr(rt, "_owner_pid", os.getpid() + 1)
            assert active_runtime() is None
            assert not attach_preferred()


class TestIdleTeardown:
    def test_pool_torn_down_after_idle_and_reforked_on_use(self):
        with pool_runtime(idle_timeout=0.15) as rt:
            run_shards(_pid, [(1,), (2,)], workers=2)
            assert rt.has_live_pool()
            deadline = time.monotonic() + 5.0
            while rt.has_live_pool() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not rt.has_live_pool(), "idle teardown never fired"
            # The next region simply re-forks; results are unaffected.
            assert run_shards(_pid, [(1,), (2,)], workers=2)
            assert rt.forks == 2


class TestSerialDegradation:
    def test_pool_failure_warns_once_and_runs_serially(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise OSError("semaphores unavailable in sandbox")

        monkeypatch.setattr(multiprocessing, "get_context", no_pool)
        import repro.utils.once as once

        monkeypatch.setattr(once, "_SEEN", set())
        with pool_runtime():
            with pytest.warns(RuntimeWarning, match="semaphores unavailable"):
                assert run_shards(_pid, [(1,), (2,)], workers=2) == [
                    os.getpid(), os.getpid(),
                ]

    def test_closed_runtime_degrades_serially(self, monkeypatch):
        import repro.utils.once as once

        monkeypatch.setattr(
            once, "_SEEN", {"parallel.pool-unavailable"}
        )
        with pool_runtime() as rt:
            rt.close()
            assert run_shards(_pid, [(1,), (2,)], workers=2) == [
                os.getpid(), os.getpid(),
            ]


class TestAttachByName:
    def test_publish_before_pool_uses_inherit(self):
        values = np.random.default_rng(SEED).standard_normal(16384)
        with pool_runtime() as rt:
            assert not attach_preferred()  # no live pool yet
            with TraceStore.publish(values) as store:
                assert store.handle.kind == "inherit"
            assert rt.forks == 0

    def test_publish_after_pool_start_attaches_by_name(self):
        """The tentpole pin: a live pool predating the publish forces shm."""
        values = np.random.default_rng(SEED).standard_normal(16384)
        with pool_runtime() as rt:
            run_shards(_pid, [(1,), (2,)], workers=2)  # fork the pool first
            assert rt.has_live_pool() and attach_preferred()
            with TraceStore.publish(values) as store:
                if store.handle.kind != "shm":
                    pytest.skip("shared memory unavailable in this environment")
                results = run_shards(
                    _registry_view, [(store.handle,), (store.handle,)],
                    workers=2,
                )
            expected = float(values.sum())
            for inherited, total in results:
                # Workers forked before the publish: the registry entry is
                # invisible to them, so this was a genuine by-name attach.
                assert not inherited
                assert total == expected


class TestRuntimeModeEnv:
    def test_unset_means_fresh(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNTIME", raising=False)
        assert runtime_mode_from_env() == "fresh"

    @pytest.mark.parametrize("raw", ["persistent", "POOL", " Persistent "])
    def test_persistent_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_RUNTIME", raw)
        assert runtime_mode_from_env() == "persistent"

    @pytest.mark.parametrize("raw", ["fresh", "fork", ""])
    def test_fresh_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_RUNTIME", raw)
        assert runtime_mode_from_env() == "fresh"

    def test_unknown_runtime_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME", "turbo")
        with pytest.raises(ParameterError, match="REPRO_RUNTIME"):
            runtime_mode_from_env()


def test_module_state_clean():
    """No test above may leak an active runtime into the session."""
    assert runtime_module._ACTIVE_RUNTIME is None
