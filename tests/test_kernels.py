"""Tests for the optional compiled-kernel tier (:mod:`repro.kernels`).

The toggle machinery must behave exactly like the other ``REPRO_*``
levers: lazy env reads, context overrides beating the environment,
malformed values raising :class:`ParameterError` naming the variable,
and enabled-but-unavailable degrading to the pure path with one loud
warning.  Bit-identity of the replay algorithm itself is pinned in
``test_perf_parity.py``; here we pin the plumbing.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.kernels as kernels_mod
from repro.errors import ParameterError
from repro.kernels import (
    bss_replay_kernel,
    kernels,
    kernels_enabled,
    numba_available,
)


@pytest.fixture(autouse=True)
def clean_toggle(monkeypatch):
    """Each test starts with no env setting and a fresh warning latch."""
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    import repro.utils.once as once

    monkeypatch.setattr(once, "_SEEN", set())
    assert not kernels_mod._OVERRIDES  # no scope leaked from another test
    yield
    assert not kernels_mod._OVERRIDES


class TestToggle:
    def test_default_is_off(self):
        assert kernels_enabled() is False

    def test_context_manager_enables_and_restores(self):
        with kernels(True):
            assert kernels_enabled() is True
        assert kernels_enabled() is False

    def test_nested_innermost_wins(self):
        with kernels(True):
            with kernels(False):
                assert kernels_enabled() is False
            assert kernels_enabled() is True

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "on")
        with kernels(False):
            assert kernels_enabled() is False
        assert kernels_enabled() is True

    @pytest.mark.parametrize("value,expected", [
        ("on", True), ("1", True), ("true", True), ("YES", True),
        ("off", False), ("0", False), ("false", False), ("no", False),
        ("", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_KERNELS", value)
        assert kernels_enabled() is expected

    def test_env_read_lazily(self, monkeypatch):
        """The variable is consulted per call, not cached at import."""
        assert kernels_enabled() is False
        monkeypatch.setenv("REPRO_KERNELS", "on")
        assert kernels_enabled() is True

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "maybe")
        with pytest.raises(ParameterError, match="REPRO_KERNELS"):
            kernels_enabled()


class TestKernelResolution:
    def test_disabled_returns_none(self):
        assert bss_replay_kernel() is None

    def test_import_repro_never_imports_numba(self):
        """The pure path must not pay for (or require) numba."""
        import subprocess
        import sys

        code = (
            "import sys\n"
            "import repro.core.bss\n"
            "import repro.kernels\n"
            "sys.exit(1 if 'numba' in sys.modules else 0)\n"
        )
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0

    def test_enabled_without_numba_warns_once_and_degrades(
        self, monkeypatch
    ):
        monkeypatch.setattr(kernels_mod, "_NUMBA", False)
        with kernels(True):
            with pytest.warns(RuntimeWarning, match="numba"):
                assert bss_replay_kernel() is None
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second call: silent
                assert bss_replay_kernel() is None

    def test_enabled_with_numba_returns_callable(self, monkeypatch):
        """Route the interpreted replay through the hook when numba is
        absent — same contract, no compilation."""
        if not numba_available():
            monkeypatch.setattr(kernels_mod, "_NUMBA", True)
            monkeypatch.setattr(
                kernels_mod, "_REPLAY_KERNEL", kernels_mod._replay_tail
            )
        with kernels(True):
            assert callable(bss_replay_kernel())


class TestReplayTailAlgorithm:
    """The interpreted kernel function against a hand-computed case."""

    def test_accepts_extras_and_folds_threshold(self):
        # Two intervals of 4 with one candidate extra at offset 2.
        values = np.array([10.0, 0, 9.0, 0, 10.0, 0, 0.1, 0])
        reg_idx = np.array([0, 4], dtype=np.int64)
        reg_val = values[reg_idx]
        offsets = np.array([2], dtype=np.int64)
        out_idx = np.empty(8, dtype=np.int64)
        out_val = np.empty(8, dtype=np.float64)
        count = kernels_mod._replay_tail(
            values, reg_idx, reg_val, offsets,
            0, 0.0, 0, 0.0, 1.0, out_idx, out_val,
        )
        # Interval 0: 10 > 0 triggers; extra values[2]=9 > 0 accepted;
        # threshold -> (10+9)/2 = 9.5.  Interval 1: 10 > 9.5 triggers;
        # extra values[6]=0.1 < threshold rejected.
        assert count == 1
        assert out_idx[0] == 2
        assert out_val[0] == 9.0

    def test_out_of_range_extra_breaks_scan(self):
        values = np.array([5.0, 1.0])
        reg_idx = np.array([0], dtype=np.int64)
        reg_val = values[reg_idx]
        offsets = np.array([1, 2, 3], dtype=np.int64)
        out_idx = np.empty(3, dtype=np.int64)
        out_val = np.empty(3, dtype=np.float64)
        count = kernels_mod._replay_tail(
            values, reg_idx, reg_val, offsets,
            0, 0.0, 0, 0.0, 0.1, out_idx, out_val,
        )
        assert count == 1  # offset 1 accepted, offsets 2/3 out of range
        assert out_idx[0] == 1


class TestExecutionScopeWiring:
    def test_execution_scope_kernels_flag(self):
        from repro.experiments.runner import execution_scope

        with execution_scope(kernels=True):
            assert kernels_enabled() is True
        assert kernels_enabled() is False

    def test_execution_scope_default_inherits_env(self, monkeypatch):
        from repro.experiments.runner import execution_scope

        monkeypatch.setenv("REPRO_KERNELS", "on")
        with execution_scope():
            assert kernels_enabled() is True
