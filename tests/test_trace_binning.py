"""Tests for repro.trace.binning and repro.trace.process."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.trace.binning import RateBinner, bin_bytes, bin_od_flow, bin_packets
from repro.trace.packet import PacketTrace
from repro.trace.process import RateProcess


def sample_trace() -> PacketTrace:
    return PacketTrace(
        timestamps=[0.0, 0.4, 1.1, 2.9, 3.0],
        sources=[1, 1, 2, 1, 1],
        destinations=[2, 2, 3, 2, 2],
        sizes=[100, 200, 300, 400, 500],
    )


class TestBinBytes:
    def test_volumes(self):
        process = bin_bytes(sample_trace(), 1.0)
        np.testing.assert_allclose(process.values, [300.0, 300.0, 400.0, 500.0])

    def test_mass_conservation(self):
        process = bin_bytes(sample_trace(), 1.0)
        assert process.values.sum() == sample_trace().total_bytes

    def test_explicit_origin(self):
        process = bin_bytes(sample_trace(), 1.0, t0=-1.0, n_bins=5)
        np.testing.assert_allclose(process.values, [0.0, 300.0, 300.0, 400.0, 500.0])

    def test_packets_outside_window_dropped(self):
        process = bin_bytes(sample_trace(), 1.0, t0=0.0, n_bins=2)
        np.testing.assert_allclose(process.values, [300.0, 300.0])

    def test_empty_trace_rejected(self):
        with pytest.raises(ParameterError, match="empty"):
            bin_bytes(PacketTrace.empty(), 1.0)

    def test_invalid_width(self):
        with pytest.raises(ParameterError):
            bin_bytes(sample_trace(), 0.0)

    @given(st.floats(0.1, 3.0), st.integers(1, 60))
    @settings(max_examples=20, deadline=None)
    def test_mass_conserved_property(self, width, n_packets):
        ts = np.sort(np.linspace(0.0, 10.0, n_packets))
        trace = PacketTrace(ts, [1] * n_packets, [2] * n_packets, [100] * n_packets)
        process = bin_bytes(trace, width)
        assert process.values.sum() == pytest.approx(trace.total_bytes)


class TestBinPackets:
    def test_counts(self):
        process = bin_packets(sample_trace(), 1.0)
        np.testing.assert_allclose(process.values, [2.0, 1.0, 1.0, 1.0])
        assert process.unit == "packets/bin"

    def test_count_conservation(self):
        process = bin_packets(sample_trace(), 2.0)
        assert process.values.sum() == len(sample_trace())


class TestBinOdFlow:
    def test_bytes_of_selected_pair(self):
        process = bin_od_flow(sample_trace(), [(1, 2)], 1.0, n_bins=4, t0=0.0)
        np.testing.assert_allclose(process.values, [300.0, 0.0, 400.0, 500.0])

    def test_packets_mode(self):
        process = bin_od_flow(
            sample_trace(), [(1, 2)], 1.0, by="packets", n_bins=4, t0=0.0
        )
        np.testing.assert_allclose(process.values, [2.0, 0.0, 1.0, 1.0])

    def test_invalid_mode(self):
        with pytest.raises(ParameterError):
            bin_od_flow(sample_trace(), [(1, 2)], 1.0, by="flows")


class TestRateProcess:
    def test_basic_stats(self):
        process = RateProcess(values=np.array([1.0, 2.0, 3.0, 4.0]), bin_width=0.5)
        assert len(process) == 4
        assert process.duration == pytest.approx(2.0)
        assert process.mean == pytest.approx(2.5)
        assert process.mean_per_second == pytest.approx(5.0)
        assert process.variance == pytest.approx(np.var([1, 2, 3, 4]))

    def test_aggregate_eq1(self):
        """aggregate() implements the paper's Eq. (1): block means."""
        process = RateProcess(values=np.arange(8, dtype=float), bin_width=1.0)
        agg = process.aggregate(4)
        np.testing.assert_allclose(agg.values, [1.5, 5.5])
        assert agg.bin_width == pytest.approx(4.0)

    def test_aggregate_preserves_mean(self):
        process = RateProcess(values=np.arange(16, dtype=float), bin_width=1.0)
        assert process.aggregate(4).mean == pytest.approx(process.mean)

    def test_aggregate_one_is_self(self):
        process = RateProcess(values=np.arange(4, dtype=float))
        assert process.aggregate(1) is process

    def test_slice(self):
        process = RateProcess(values=np.arange(10, dtype=float))
        window = process.slice(2, 5)
        np.testing.assert_allclose(window.values, [2.0, 3.0, 4.0])

    def test_slice_bounds_checked(self):
        process = RateProcess(values=np.arange(4, dtype=float))
        with pytest.raises(ParameterError):
            process.slice(2, 9)
        with pytest.raises(ParameterError):
            process.slice(3, 3)

    def test_per_second(self):
        process = RateProcess(values=np.array([10.0, 20.0]), bin_width=0.1)
        np.testing.assert_allclose(process.per_second().values, [100.0, 200.0])

    def test_centered(self):
        process = RateProcess(values=np.array([1.0, 3.0]))
        np.testing.assert_allclose(process.centered(), [-1.0, 1.0])

    def test_rejects_empty_values(self):
        with pytest.raises(ParameterError):
            RateProcess(values=np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(ParameterError):
            RateProcess(values=np.array([1.0, np.nan]))


class TestRateBinner:
    def test_full_trace_conserves_mass(self):
        trace = sample_trace()
        binner = RateBinner.for_trace(trace, n_bins=4)
        process = binner.bin(trace)
        assert process.values.size == 4
        assert process.values.sum() == trace.total_bytes

    def test_last_packet_lands_in_the_final_bin(self):
        # The defining trace's last packet sits exactly on the grid's
        # right edge; the closed edge keeps it on the grid.
        trace = sample_trace()
        binner = RateBinner.for_trace(trace, n_bins=3)
        process = binner.bin(trace)
        assert process.values[-1] >= trace.sizes[-1]

    def test_substream_shares_the_parent_grid(self):
        trace = sample_trace()
        binner = RateBinner.for_trace(trace, n_bins=4)
        sub = trace.select(np.array([True, False, False, True, False]))
        full, sampled = binner.bin(trace), binner.bin(sub)
        assert full.values.size == sampled.values.size
        assert full.bin_width == sampled.bin_width
        assert sampled.values.sum() == trace.sizes[[0, 3]].sum()
        # Every sampled bin is bounded by the full trace's bin.
        assert np.all(sampled.values <= full.values)

    def test_packet_counting_mode(self):
        trace = sample_trace()
        binner = RateBinner.for_trace(trace, n_bins=4, by="packets")
        process = binner.bin(trace)
        assert process.unit == "packets/bin"
        assert process.values.sum() == len(trace)

    def test_default_bin_count_is_clamped(self):
        trace = sample_trace()
        assert RateBinner.for_trace(trace).n_bins == 16  # 5 // 8 -> floor 16

    def test_zero_span_trace_gets_a_unit_grid(self):
        trace = PacketTrace(timestamps=[1.0, 1.0], sources=[1, 1],
                            destinations=[2, 2], sizes=[10, 20])
        binner = RateBinner.for_trace(trace, n_bins=4)
        assert binner.bin_width == 1.0
        assert binner.bin(trace).values.sum() == 30

    def test_invalid_grid_rejected(self):
        with pytest.raises(ParameterError):
            RateBinner(t0=0.0, bin_width=0.0, n_bins=4)
        with pytest.raises(ParameterError):
            RateBinner(t0=0.0, bin_width=1.0, n_bins=0)
        with pytest.raises(ParameterError):
            RateBinner(t0=0.0, bin_width=1.0, n_bins=4, by="flows")
        with pytest.raises(ParameterError):
            RateBinner.for_trace(PacketTrace(timestamps=[], sources=[],
                                             destinations=[], sizes=[]))
