"""Block CSV decoder vs the reference line loop: grammar/error parity.

The block decoder (:func:`repro.trace.io._iter_csv_column_blocks` and the
``np.loadtxt`` fast path under it) must be observationally identical to
the original per-line parse loop, which survives as
:func:`repro.trace.io._reference_iter_csv_rows` — same accepted grammar,
same decoded values bit-for-bit, same ``TraceFormatError`` text and line
numbers, same chunk boundaries.  These tests force text-block splits at
adversarial offsets by shrinking ``_CSV_BLOCK_CHARS`` and compare
everything against the reference oracles.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.trace.io as trace_io
from repro.errors import TraceFormatError
from repro.trace.io import (
    _CSV_HEADER,
    _reference_iter_csv_chunks,
    _reference_iter_csv_rows,
    iter_trace_chunks,
    read_csv,
    write_csv,
)
from repro.trace.packet import PacketTrace


def make_trace(n: int, seed: int = 11) -> PacketTrace:
    rng = np.random.default_rng(seed)
    return PacketTrace(
        timestamps=np.sort(rng.uniform(0, 1000, n)).round(6),
        sources=rng.integers(0, 2**32, n, dtype=np.uint32),
        destinations=rng.integers(0, 100, n),
        sizes=rng.integers(40, 1500, n),
        protocols=rng.integers(0, 256, n),
    )


def reference_read(path) -> PacketTrace:
    with open(path, "r", encoding="utf-8") as fh:
        fh.readline()  # header
        return trace_io._trace_from_rows(
            list(_reference_iter_csv_rows(fh, path))
        )


def assert_bit_identical(a: PacketTrace, b: PacketTrace) -> None:
    for name in ("timestamps", "sources", "destinations", "sizes",
                 "protocols"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype
        np.testing.assert_array_equal(left, right)


class TestBlockBoundaries:
    """Decoding must not depend on where the text blocks split."""

    @pytest.mark.parametrize("block_chars", [1, 3, 7, 16, 64, 1024])
    def test_every_split_offset_decodes_identically(
        self, tmp_path, monkeypatch, block_chars
    ):
        trace = make_trace(97)
        path = tmp_path / "t.csv"
        write_csv(trace, path)
        expected = reference_read(path)
        monkeypatch.setattr(trace_io, "_CSV_BLOCK_CHARS", block_chars)
        assert_bit_identical(read_csv(path), expected)

    def test_block_smaller_than_one_line(self, tmp_path, monkeypatch):
        """A block size below one record forces multi-read carries."""
        path = tmp_path / "t.csv"
        path.write_text(f"{_CSV_HEADER}\n1.5,1,2,40,6\n2.25,3,4,1500,17\n")
        monkeypatch.setattr(trace_io, "_CSV_BLOCK_CHARS", 2)
        trace = read_csv(path)
        assert trace.timestamps.tolist() == [1.5, 2.25]
        assert trace.sizes.tolist() == [40, 1500]

    def test_trailing_line_without_newline(self, tmp_path, monkeypatch):
        path = tmp_path / "t.csv"
        path.write_text(f"{_CSV_HEADER}\n1.0,1,2,40,6\n2.0,3,4,80,17")
        for block_chars in (4, 1 << 20):
            monkeypatch.setattr(trace_io, "_CSV_BLOCK_CHARS", block_chars)
            trace = read_csv(path)
            assert trace.timestamps.tolist() == [1.0, 2.0]
            assert trace.sources.tolist() == [1, 3]

    def test_chunk_boundaries_match_reference_chunker(
        self, tmp_path, monkeypatch
    ):
        """Chunk splits are pinned to the per-row reference chunker."""
        trace = make_trace(157)
        path = tmp_path / "t.csv"
        write_csv(trace, path)
        for block_chars in (13, 100, 1 << 20):
            monkeypatch.setattr(trace_io, "_CSV_BLOCK_CHARS", block_chars)
            for chunk_size in (1, 7, 64, 157, 1000):
                fast = list(iter_trace_chunks(path, chunk_size=chunk_size))
                ref = list(_reference_iter_csv_chunks(path, chunk_size))
                assert [len(c) for c in fast] == [len(c) for c in ref]
                for f, r in zip(fast, ref):
                    assert_bit_identical(f, r)


class TestGrammarParity:
    """Comments, blanks, and whitespace parse exactly like the loop."""

    CONTENT = (
        f"{_CSV_HEADER}\n"
        "# a comment line\n"
        "1.0,1,2,40,6\n"
        "\n"
        "   \n"
        "# another comment\n"
        "  2.5,3,4,80,17  \n"
        "3.0,5,6,120,6\n"
    )

    @pytest.mark.parametrize("block_chars", [1, 5, 37, 1 << 20])
    def test_comments_and_blanks_skipped(
        self, tmp_path, monkeypatch, block_chars
    ):
        path = tmp_path / "t.csv"
        path.write_text(self.CONTENT)
        monkeypatch.setattr(trace_io, "_CSV_BLOCK_CHARS", block_chars)
        trace = read_csv(path)
        assert trace.timestamps.tolist() == [1.0, 2.5, 3.0]
        assert_bit_identical(trace, reference_read(path))

    def test_scientific_notation_and_int_floats(self, tmp_path):
        """Anything ``float()``/``int()`` accept must decode identically."""
        path = tmp_path / "t.csv"
        path.write_text(
            f"{_CSV_HEADER}\n"
            "1e-3,1,2,40,6\n"
            "2.5E0,3,4,80,17\n"
            "3,5,6,120,6\n"  # integer-literal timestamp
            "+4.0,007,8,160,17\n"  # leading + / zero-padded int
        )
        assert_bit_identical(read_csv(path), reference_read(path))


class TestErrorParity:
    """Malformed input raises the reference loop's exact message."""

    def reference_error(self, path):
        with pytest.raises(TraceFormatError) as info:
            reference_read(path)
        return str(info.value)

    @pytest.mark.parametrize("block_chars", [1, 9, 1 << 20])
    @pytest.mark.parametrize(
        "bad_line",
        ["2.0,zap,2,40,6", "2.0,1,2,40", "2.0,1,2,40,6,9", "x", "2.0,1.5,2,40,6"],
    )
    def test_same_message_and_line_number(
        self, tmp_path, monkeypatch, block_chars, bad_line
    ):
        path = tmp_path / "bad.csv"
        path.write_text(
            f"{_CSV_HEADER}\n# pad\n1.0,1,2,40,6\n{bad_line}\n3.0,1,2,40,6\n"
        )
        expected = self.reference_error(path)
        assert ":4:" in expected
        monkeypatch.setattr(trace_io, "_CSV_BLOCK_CHARS", block_chars)
        with pytest.raises(TraceFormatError) as info:
            read_csv(path)
        assert str(info.value) == expected

    def test_rows_before_error_still_chunked(self, tmp_path, monkeypatch):
        """Complete chunks before a malformed row surface before it raises."""
        lines = [f"{i}.0,1,2,40,6" for i in range(1, 8)] + ["oops"]
        path = tmp_path / "bad.csv"
        path.write_text(_CSV_HEADER + "\n" + "\n".join(lines) + "\n")
        monkeypatch.setattr(trace_io, "_CSV_BLOCK_CHARS", 11)
        chunks = iter_trace_chunks(path, chunk_size=3)
        assert len(next(chunks)) == 3
        assert len(next(chunks)) == 3
        with pytest.raises(TraceFormatError, match="bad.csv:9"):
            next(chunks)

    def test_uint32_overflow_parity(self, tmp_path):
        """A >uint32 field overflows like the reference row path did."""
        path = tmp_path / "big.csv"
        path.write_text(f"{_CSV_HEADER}\n1.0,{2**32},2,40,6\n")
        with pytest.raises(OverflowError):
            read_csv(path)


row_strategy = st.tuples(
    st.floats(min_value=0, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=255),
)


class TestHypothesisRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(rows=st.lists(row_strategy, max_size=40),
           block_chars=st.integers(min_value=1, max_value=200))
    def test_block_decode_matches_reference_rows(
        self, tmp_path_factory, rows, block_chars
    ):
        """Arbitrary decimal rows decode bit-identically to the loop."""
        rows = sorted(rows)  # PacketTrace needs non-decreasing timestamps
        text = _CSV_HEADER + "\n" + "".join(
            f"{t!r},{s},{d},{z},{p}\n" for t, s, d, z, p in rows
        )
        path = tmp_path_factory.mktemp("bd") / "t.csv"
        path.write_text(text)
        expected = reference_read(path)
        original = trace_io._CSV_BLOCK_CHARS
        trace_io._CSV_BLOCK_CHARS = block_chars
        try:
            decoded = read_csv(path)
        finally:
            trace_io._CSV_BLOCK_CHARS = original
        assert_bit_identical(decoded, expected)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=0, max_value=120),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_write_read_round_trip(self, tmp_path_factory, n, seed):
        """write_csv -> block read == write_csv -> reference read."""
        trace = make_trace(n, seed=seed)
        path = tmp_path_factory.mktemp("rt") / "t.csv"
        write_csv(trace, path)
        assert_bit_identical(read_csv(path), reference_read(path))
