"""Campaign fault tolerance: quarantine, store integrity, clean shutdown.

The acceptance property everything here funnels into: a campaign run
under injected faults — worker kills, budget exhaustion, torn or
corrupted store appends — must converge, via retries, quarantine, and
``resume``, to a result store *byte-identical* (results and manifest)
to the undisturbed ``workers=1`` run.  Plus the named failure modes
that must never be repaired silently: mid-file corruption raises
:class:`StoreIntegrityError`, a missing manifest is a
:class:`ParameterError`, and SIGTERM/SIGINT tear the worker pool down
instead of orphaning it.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

import repro.faults as faults
import repro.scenarios.campaign as campaign_module
from repro.errors import InjectedFault, ParameterError, StoreIntegrityError
from repro.faults import fault_plan
from repro.parallel import RetryPolicy, pool_runtime, run_shards
from repro.scenarios import (
    ResultStore,
    SamplerSpec,
    Scenario,
    TrafficSpec,
    register_scenario,
    run_campaign,
)
from repro.scenarios.store import checksummed_line, record_checksum_ok
from repro.scenarios.registry import _REGISTRY

SEED = 20260726

#: Two attempts and near-zero backoff: budget exhaustion in well under a
#: second, and the kill-recovery path still gets one retry.
RETRY = RetryPolicy(max_attempts=2, backoff_base=0.01)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setattr(faults, "_SESSION_PLAN", None)
    faults.reset_shard_counter()
    yield
    faults.reset_shard_counter()


@pytest.fixture()
def mini_registered():
    """The 4-cell fixture scenario from test_scenarios, registered."""
    scenario = Scenario(
        name="test-mini",
        description="fixture",
        traffic=(
            TrafficSpec(model="fgn", n=2048, hurst=0.7),
            TrafficSpec(model="fgn", n=2048, hurst=0.85),
        ),
        samplers=(
            SamplerSpec(kind="systematic", rate=0.05),
            SamplerSpec(kind="stratified", rate=0.05),
        ),
        n_instances=4,
    )
    register_scenario(scenario)
    yield scenario.name
    _REGISTRY.pop(scenario.name, None)


def _run(name, results_dir, **kwargs):
    kwargs.setdefault("workers", 1)
    return run_campaign([name], campaign="chaos-test", seed=SEED,
                        results_dir=results_dir, **kwargs)


def _store_bytes(summary):
    return (summary.store.results_path.read_bytes(),
            summary.store.manifest_path.read_bytes())


@pytest.fixture()
def reference(mini_registered, tmp_path):
    """Golden bytes: the undisturbed workers=1 run of the fixture grid."""
    with fault_plan(None):
        summary = _run(mini_registered, tmp_path / "ref")
    return _store_bytes(summary)


# ------------------------------------------------------------- checksums
class TestRecordChecksums:
    def test_round_trip(self):
        line = checksummed_line({"key": "k", "value": 1.5})
        parsed = json.loads(line)
        assert parsed["_crc32"]
        assert record_checksum_ok(parsed)

    def test_tampering_fails_the_checksum(self):
        parsed = json.loads(checksummed_line({"key": "k", "value": 1.5}))
        parsed["value"] = 2.5
        assert not record_checksum_ok(parsed)

    def test_legacy_record_without_checksum_passes(self):
        assert record_checksum_ok({"key": "k", "value": 1.5})


# ------------------------------------------------- quarantine and resume
class TestQuarantine:
    def test_budget_exhaustion_quarantines_then_resume_converges(
            self, mini_registered, tmp_path, reference):
        # Shard 0 belongs to cell 0; killing it on *every* attempt
        # exhausts the budget, and the campaign must keep going.
        with fault_plan("kill:shard=0:attempt=*"):
            faulty = _run(mini_registered, tmp_path / "run",
                          workers=2, retry=RETRY)
        assert faulty.quarantined == 1
        assert faulty.executed == faulty.n_cells - 1
        assert "quarantined=1" in faulty.render()
        assert faulty.store.quarantine_path.exists()
        (sidecar,) = faulty.store.quarantined_records()
        assert sidecar["error"]["type"] == "RetryBudgetError"
        assert faulty.store.is_quarantined(sidecar["key"])
        assert json.loads(
            faulty.store.manifest_path.read_text())["quarantined"] == 1

        # Fault-free resume re-attempts exactly the quarantined cell and
        # the compacted store converges to the golden bytes.
        with fault_plan(None):
            resumed = _run(mini_registered, tmp_path / "run",
                           workers=2, resume=True, retry=RETRY)
        assert resumed.executed == 1
        assert resumed.skipped == resumed.n_cells - 1
        assert not resumed.store.quarantine_path.exists()
        assert "quarantined" not in resumed.store.read_manifest()
        assert _store_bytes(resumed) == reference

    def test_absorbed_kill_never_reaches_quarantine(
            self, mini_registered, tmp_path, reference):
        # First-attempt-only kill: recovery absorbs it inside the cell.
        with fault_plan("kill:shard=0"):
            summary = _run(mini_registered, tmp_path / "run",
                           workers=2, retry=RETRY)
        assert summary.quarantined == 0
        assert summary.executed == summary.n_cells
        assert "quarantined" not in summary.render()
        assert _store_bytes(summary) == reference


# -------------------------------------------------------- store integrity
class TestStoreIntegrity:
    def test_torn_append_aborts_then_resume_repairs(
            self, mini_registered, tmp_path, reference):
        with fault_plan("torn:append=2"):
            with pytest.raises(InjectedFault, match="tore append #2"):
                _run(mini_registered, tmp_path / "run")
        with fault_plan(None):
            resumed = _run(mini_registered, tmp_path / "run", resume=True)
        # Only the record before the torn append survived the repair.
        assert resumed.skipped == 1
        assert resumed.executed == resumed.n_cells - 1
        assert _store_bytes(resumed) == reference

    def test_mid_file_checksum_corruption_is_never_repaired(
            self, mini_registered, tmp_path):
        # The corrupted line parses as JSON, so only its CRC betrays it;
        # it sits before the tail, so resume must refuse, not repair.
        with fault_plan("corrupt:append=1"):
            summary = _run(mini_registered, tmp_path / "run")
        assert summary.executed == summary.n_cells
        with pytest.raises(StoreIntegrityError,
                           match="line 1 .*checksum mismatch"):
            _run(mini_registered, tmp_path / "run", resume=True)
        with pytest.raises(StoreIntegrityError, match="checksum mismatch"):
            summary.store.records()

    def test_empty_results_file_resumes_from_scratch(
            self, mini_registered, tmp_path, reference):
        summary = _run(mini_registered, tmp_path / "run")
        summary.store.results_path.write_bytes(b"")
        resumed = _run(mini_registered, tmp_path / "run", resume=True)
        assert resumed.executed == resumed.n_cells
        assert resumed.skipped == 0
        assert _store_bytes(resumed) == reference

    def test_missing_manifest_is_a_named_error(
            self, mini_registered, tmp_path):
        summary = _run(mini_registered, tmp_path / "run")
        summary.store.manifest_path.unlink()
        with pytest.raises(ParameterError, match="no campaign manifest"):
            _run(mini_registered, tmp_path / "run", resume=True)

    def test_truncation_at_multibyte_utf8_boundary(
            self, mini_registered, tmp_path, reference):
        """A kill can land mid-flush inside a multi-byte character; the
        torn tail is then not even decodable, let alone JSON."""
        summary = _run(mini_registered, tmp_path / "run")
        intact = summary.store.results_path.read_bytes()
        with open(summary.store.results_path, "ab") as fh:
            fh.write('{"key": "caf'.encode("utf-8") + "é".encode("utf-8")[:1])
        # Read-only access tolerates the torn tail...
        assert len(summary.store.records()) == summary.n_cells
        # ...and resume repairs it back to exactly the intact bytes.
        resumed = _run(mini_registered, tmp_path / "run", resume=True)
        assert resumed.skipped == resumed.n_cells
        assert resumed.executed == 0
        assert summary.store.results_path.read_bytes() == intact
        assert _store_bytes(resumed) == reference


# --------------------------------------------------------- clean shutdown
def _fake_record(cell, *, campaign, seed):
    return {"key": cell.key, "fixture": True}


def _noop(x):
    return x


class TestCleanShutdown:
    def test_sigterm_interrupts_and_tears_the_pool_down(
            self, mini_registered, tmp_path, monkeypatch):
        calls = []

        def _evaluate(cell, *, campaign, seed):
            if len(calls) == 1:
                os.kill(os.getpid(), signal.SIGTERM)
                raise AssertionError("SIGTERM handler did not fire")
            calls.append(cell.key)
            # Fork the persistent pool so teardown has something real
            # to tear down.
            run_shards(_noop, [(0,), (1,)], workers=2)
            return _fake_record(cell, campaign=campaign, seed=seed)

        monkeypatch.setattr(campaign_module, "evaluate_cell", _evaluate)
        before = signal.getsignal(signal.SIGTERM)
        with pool_runtime(workers=2) as rt:
            with pytest.raises(KeyboardInterrupt):
                # schedule="ensembles": the monkeypatched evaluate_cell
                # must run in the parent for the SIGTERM to interrupt
                # the campaign loop rather than a pool worker.
                _run(mini_registered, tmp_path / "run", workers=2,
                     schedule="ensembles")
            assert not rt.has_live_pool()
        # The previous handler is back and the first append is durable.
        assert signal.getsignal(signal.SIGTERM) is before
        store = ResultStore(tmp_path / "run" / "chaos-test")
        assert len(store.records()) == 1

    def test_keyboard_interrupt_propagates_after_pool_teardown(
            self, mini_registered, tmp_path, monkeypatch):
        def _evaluate(cell, *, campaign, seed):
            raise KeyboardInterrupt

        monkeypatch.setattr(campaign_module, "evaluate_cell", _evaluate)
        with pool_runtime(workers=2) as rt:
            run_shards(_noop, [(0,), (1,)], workers=2)
            assert rt.has_live_pool()
            with pytest.raises(KeyboardInterrupt):
                _run(mini_registered, tmp_path / "run", workers=2,
                     schedule="ensembles")
            assert not rt.has_live_pool()


def test_module_state_clean():
    """Last in file: campaign faults must not leak session state."""
    import repro.parallel.runtime as runtime_module

    assert runtime_module._ACTIVE_RUNTIME is None
    assert faults.active_plan() is None
    assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
