"""Why the Hurst parameter matters: queueing impact of mis-measured H.

The paper defends Hurst preservation because H "is crucial for queuing
analysis".  This example quantifies that: it simulates queues fed by
traffic with different Hurst parameters at equal load, compares the
Norros analytical tail with simulation, and shows the provisioning error
made by trusting an under-estimated H.

Run:  python examples/queueing_impact.py
"""

from __future__ import annotations

import numpy as np

from repro.queueing import (
    overflow_probability,
    queue_occupancy,
    required_capacity,
    simulate_queue,
    tail_probabilities,
)
from repro.traffic import fgn_davies_harte

SEED = 5
N = 1 << 17
MEAN, CAPACITY = 5.0, 6.0


def main() -> None:
    print(f"load: mean {MEAN}, capacity {CAPACITY} "
          f"(utilisation {MEAN / CAPACITY:.0%})\n")

    print("-- queue fullness vs Hurst parameter (simulation) --")
    for hurst in (0.5, 0.7, 0.9):
        arrivals = np.maximum(
            MEAN + fgn_davies_harte(N, hurst, SEED), 0.0
        )
        stats = simulate_queue(arrivals, CAPACITY)
        print(f"  H={hurst}: mean queue {stats.mean_queue:7.2f}, "
              f"p99 {stats.p99_queue:8.2f}, max {stats.max_queue:9.2f}")

    print("\n-- Norros analytical tail vs simulation (H=0.8) --")
    hurst = 0.8
    arrivals = np.maximum(MEAN + fgn_davies_harte(N, hurst, SEED), 0.0)
    occupancy = queue_occupancy(arrivals, CAPACITY)
    buffers = np.array([1.0, 2.0, 5.0, 10.0])
    empirical = tail_probabilities(occupancy, buffers)
    analytical = overflow_probability(buffers, CAPACITY, MEAN, hurst)
    print(f"  {'buffer':>8}  {'P(Q>b) sim':>12}  {'Norros':>12}")
    for b, e, a in zip(buffers, empirical, analytical):
        print(f"  {b:>8.1f}  {e:>12.4g}  {a:>12.4g}")

    print("\n-- provisioning error from an under-estimated H --")
    target = 1e-4
    buffer = 20.0
    for assumed in (0.6, 0.7, 0.8, 0.9):
        capacity = required_capacity(target, buffer, MEAN, assumed)
        print(f"  assumed H={assumed}: provision capacity {capacity:.2f}")
    print(
        "\nIf sampling reports H=0.6 while the true H is 0.9, the link is "
        "under-provisioned\n— this is why the paper insists samplers must "
        "preserve second-order statistics."
    )


if __name__ == "__main__":
    main()
