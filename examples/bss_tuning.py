"""BSS parameter design walkthrough (the paper's Sec. V-C, step by step).

Shows how the three design rules connect:

1. the bias factor xi(L, eps) and its unbiased roots (Figs. 10/11),
2. the unbiased design of Eq. (23),
3. the biased design xi = 1/(1-eta) with eta predicted from the sampling
   rate alone (Eq. 35) — the rule a deployed sampler actually uses,

then validates the chosen design on a synthetic trace.

Run:  python examples/bss_tuning.py
"""

from __future__ import annotations

from repro.analysis.stable import eta_model
from repro.core import BiasedSystematicSampler, SystematicSampler
from repro.core.parameters import (
    epsilon_roots,
    l_for_target_mean,
    l_for_unbiased,
    overhead_ratio,
    xi_bias,
)
from repro.traffic import synthetic_trace

ALPHA = 1.5
RATE = 1e-3
SEED = 3


def main() -> None:
    print(f"marginal tail index alpha = {ALPHA}; base sampling rate {RATE:g}\n")

    print("-- 1. the bias surface --")
    for L in (5, 10):
        for eps in (0.5, 1.0, 2.0):
            print(f"  xi(L={L:2d}, eps={eps:.1f}) = "
                  f"{xi_bias(L, eps, ALPHA):.3f}   "
                  f"overhead L'/N = {overhead_ratio(L, eps, ALPHA):.3f}")
    eps1, eps2 = epsilon_roots(10, ALPHA, eta=0.148)
    print(f"  unbiased roots at L=10 (eta=0.148): eps1={eps1:.3f} "
          f"(infeasible), eps2={eps2:.3f}  <- the paper's Fig. 12 setting\n")

    print("-- 2. unbiased design (Eq. 23) --")
    for eta in (0.1, 0.2, 0.3):
        L = l_for_unbiased(eta, 1.0, ALPHA)
        print(f"  eta={eta:.1f}, eps=1.0  ->  L = {L:.2f}")
    print()

    print("-- 3. biased online design (Eq. 35 + Eq. 30) --")
    trace = synthetic_trace(1 << 18, rng=SEED, alpha=ALPHA)
    eta_hat = float(
        eta_model([RATE], ALPHA, cs=0.5, total_points=len(trace))[0]
    )
    L = l_for_target_mean(min(eta_hat, 0.5), 1.0, ALPHA)
    print(f"  predicted eta({RATE:g}) = {eta_hat:.3f}  ->  target "
          f"xi = {1 / (1 - eta_hat):.3f}  ->  L = {L:.2f}")

    bss = BiasedSystematicSampler.design(
        RATE, ALPHA, cs=0.5, total_points=len(trace)
    )
    print(f"  design() chose: interval={bss.interval}, "
          f"L={bss.extra_samples}, eps={bss.epsilon}\n")

    print("-- validation on a synthetic trace --")
    true_mean = trace.mean
    sys_result = SystematicSampler.from_rate(RATE).sample(trace, SEED)
    bss_result = bss.sample(trace, SEED)
    print(f"  true mean          = {true_mean:.3f}")
    print(f"  systematic mean    = {sys_result.sampled_mean:.3f} "
          f"(eta {sys_result.eta(true_mean):+.3f})")
    print(f"  BSS mean           = {bss_result.sampled_mean:.3f} "
          f"(eta {bss_result.eta(true_mean):+.3f})")
    print(f"  BSS overhead       = "
          f"{bss_result.n_extra / bss_result.n_base:.3f}")


if __name__ == "__main__":
    main()
