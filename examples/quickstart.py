"""Quickstart: sample self-similar traffic with all four techniques.

Generates the paper's synthetic trace (Pareto-marginal, LRD), samples it
at a low rate with systematic, stratified, simple random, and biased
systematic sampling (BSS), and compares the estimates of the mean and the
Hurst parameter.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro

RATE = 3e-3
SEED = 7


def clipped_hurst(values) -> float:
    """Wavelet H estimate with the standard 99.9%-quantile tail clip.

    Variance-based estimators are destabilised by infinite-variance
    marginals; clipping the extreme tail recovers the correlation
    structure's exponent (the quantity H describes).
    """
    clipped = np.minimum(values, np.quantile(values, 0.999))
    return repro.estimate_hurst(clipped, "wavelet").hurst


def main() -> None:
    trace = repro.synthetic_trace(1 << 19, rng=SEED, alpha=1.3, hurst=0.85)
    true_mean = trace.mean
    true_hurst = clipped_hurst(trace.values)
    print(f"trace: {len(trace)} points, mean={true_mean:.3f}, "
          f"wavelet H={true_hurst:.3f}")
    print(f"sampling rate: {RATE:g}  (1 in {int(1 / RATE)})\n")

    samplers = {
        "systematic": repro.SystematicSampler.from_rate(RATE),
        "stratified": repro.StratifiedSampler.from_rate(RATE),
        "simple random": repro.SimpleRandomSampler.from_rate(RATE),
        "BSS (designed)": repro.BiasedSystematicSampler.design(
            RATE, alpha=1.3, cs=0.5, total_points=len(trace)
        ),
    }

    print(f"{'method':>16}  {'samples':>8}  {'mean':>8}  {'eta':>8}  {'H':>6}")
    for name, sampler in samplers.items():
        result = sampler.sample(trace, rng=SEED)
        eta = result.eta(true_mean)
        try:
            hurst_text = f"{clipped_hurst(result.values):.3f}"
        except repro.ReproError:
            hurst_text = "n/a"
        print(
            f"{name:>16}  {result.n_samples:>8}  "
            f"{result.sampled_mean:>8.3f}  {eta:>8.3f}  {hurst_text:>6}"
        )

    print(
        "\nNotes: the sampled sequences keep the original's correlation "
        "exponent (the\npaper's T1), but at interval C the correlations are "
        "scaled down by C^-beta, so\na ~1.5k-sample sequence shows only a "
        "faint LRD signal — run\n`python -m repro.experiments run fig21` "
        "for the proper Hurst-preservation sweep\n(denser sampling, longer "
        "sequences).  The mean estimates scatter with the\nheavy tail (T3); "
        "lower the rate toward 1e-4 (`... run fig18`) to watch\nsystematic "
        "sampling under-estimate the mean and BSS correct it."
    )


if __name__ == "__main__":
    main()
