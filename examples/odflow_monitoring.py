"""OD-flow monitoring: the paper's motivating scenario, end to end.

"We need to know the mean value of the aggregated traffic of 2 specified
OD flows" (Sec. I).  This example:

1. synthesises a Bell-Labs-like packet trace (hundreds of OD pairs),
2. writes/reads it through the binary trace format,
3. builds the flow table and picks the two busiest OD pairs,
4. bins their aggregate into f(t),
5. monitors f(t) with streaming OnlineBSS versus plain systematic
   sampling at the same base rate.

Run:  python examples/odflow_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.core import OnlineBSS

SEED = 11
N_BINS = 4096
BASE_INTERVAL = 200  # granules between regular samples


def main() -> None:
    generator = repro.BellLabsLikeTrace(n_hosts=32, n_pairs=60, bin_width=0.1)
    packets = generator.packets(N_BINS, rng=SEED)
    print(f"packet trace: {len(packets)} packets, "
          f"{packets.total_bytes / 1e6:.2f} MB over {packets.duration:.0f}s")

    # Round-trip through the on-disk format, as a real pipeline would.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "capture.rpt"
        repro.write_trace(packets, path)
        packets = repro.read_trace(path)
    print(f"re-read from disk: {len(packets)} packets")

    flows = repro.FlowTable(packets)
    top = flows.top_flows(2)
    pairs = [flow.od_pair for flow in top]
    print("monitored OD pairs:",
          ", ".join(f"{s}->{d} ({f.bytes / 1e3:.0f} kB)"
                    for (s, d), f in zip(pairs, top)))

    process = repro.bin_od_flow(packets, pairs, bin_width=0.1, n_bins=N_BINS,
                                t0=0.0)
    true_mean = process.mean
    print(f"\nmonitored f(t): {len(process)} bins, true mean "
          f"{true_mean:.1f} bytes/bin")

    systematic = repro.SystematicSampler(BASE_INTERVAL).sample(process)
    monitor = OnlineBSS(BASE_INTERVAL, extra_samples=6, epsilon=1.0,
                        n_presamples=5)
    monitor.process(process.values)
    bss = monitor.result()

    for name, result in (("systematic", systematic), ("OnlineBSS", bss)):
        print(f"{name:>12}: {result.n_samples:4d} samples, "
              f"mean={result.sampled_mean:9.1f}, "
              f"eta={result.eta(true_mean):+.3f}")
    print(f"\nBSS overhead: {bss.n_extra}/{bss.n_base} extra samples "
          f"({bss.n_extra / bss.n_base:.2%})")


if __name__ == "__main__":
    main()
