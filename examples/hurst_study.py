"""Hurst estimator study: seven estimators on three LRD generators.

Cross-validates the estimator substrate the way the paper's Sec. VI-B
relies on it: exact fGn (ground truth H), on/off aggregation (Taqqu's
H = (3-alpha)/2), and the Pareto-marginal copula traffic.

Run:  python examples/hurst_study.py
"""

from __future__ import annotations

import numpy as np

from repro.hurst import available_methods, estimate_hurst
from repro.traffic import (
    MGInfinityModel,
    OnOffModel,
    ParetoLRDModel,
    fgn_davies_harte,
)

SEED = 23
N = 1 << 16
TARGET_H = 0.8


def series_under_test() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(SEED)
    copula = ParetoLRDModel.from_mean(5.68, 1.5, TARGET_H)
    values = {
        "fGn (exact)": fgn_davies_harte(N, TARGET_H, rng),
        "on/off aggregate": OnOffModel.for_hurst(
            TARGET_H, n_sources=64
        ).generate(N, rng),
        "M/G/inf": MGInfinityModel.for_hurst(TARGET_H).generate(N, rng),
        "Pareto-marginal": copula.generate(N, rng),
    }
    # Clip the heavy tail for estimation stability (standard practice for
    # variance-based estimators on infinite-variance marginals).
    values["Pareto-marginal (clipped)"] = np.minimum(
        values["Pareto-marginal"], np.quantile(values["Pareto-marginal"], 0.999)
    )
    return values


def main() -> None:
    methods = available_methods()
    data = series_under_test()
    header = f"{'generator':>26} | " + "  ".join(f"{m[:9]:>9}" for m in methods)
    print(f"target H = {TARGET_H}\n")
    print(header)
    print("-" * len(header))
    for name, series in data.items():
        cells = []
        for method in methods:
            try:
                # Step-like rate processes (on/off, M/G/inf) have
                # non-scaling fine octaves; start the wavelet regression
                # at octave 4 so only the LRD regime is fitted.
                kwargs = {"j1": 4} if method == "wavelet" else {}
                estimate = estimate_hurst(series, method, **kwargs)
                cells.append(f"{estimate.hurst:>9.3f}")
            except Exception:
                cells.append(f"{'fail':>9}")
        print(f"{name:>26} | " + "  ".join(cells))
    print(
        "\nThe wavelet column is the estimator the paper uses (Abry-Veitch); "
        "all\nestimators should agree near the target for the Gaussian "
        "generators, with\nmore spread on the heavy-tailed marginal."
    )


if __name__ == "__main__":
    main()
