"""Benchmark for paper Fig. 5: average variance of the three techniques."""

from __future__ import annotations

from conftest import run_figure


def test_fig05(benchmark):
    panels = run_figure(benchmark, "fig05")
    assert {"systematic", "stratified", "simple_random"} <= set(panels[0].series)
