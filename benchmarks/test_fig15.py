"""Benchmark for paper Fig. 15: overhead surface L'/N."""

from __future__ import annotations

from conftest import run_figure


def test_fig15(benchmark):
    panels = run_figure(benchmark, "fig15")
    row = panels[0].series["L=10"]
    assert row[0] > row[-1]
