"""Benchmark for paper Fig. 4: delta_tau positivity (Theorem 2 precondition)."""

from __future__ import annotations

from conftest import run_figure


def test_fig04(benchmark):
    panels = run_figure(benchmark, "fig04")
    for column in panels[0].series.values():
        assert min(column) > 0
