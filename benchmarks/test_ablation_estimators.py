"""Ablation: the seven Hurst estimators on known-H fGn.

Times each estimator on the same 64k-point path and records its accuracy,
quantifying the cost/precision trade-off behind choosing the wavelet
estimator (the paper's tool) as the default.
"""

from __future__ import annotations

import pytest

from repro.hurst import available_methods, estimate_hurst
from repro.traffic import fgn_davies_harte

TARGET_H = 0.8
PATH = fgn_davies_harte(1 << 16, TARGET_H, 1234)

#: Per-method accuracy budget (|H_hat - H|), from the estimator literature:
#: variance-based estimators are biased low, spectral ones are tighter.
TOLERANCES = {
    "aggregated_variance": 0.12,
    "rs": 0.12,
    "periodogram": 0.08,
    "local_whittle": 0.06,
    "fgn_whittle": 0.05,
    "dfa": 0.10,
    "wavelet": 0.05,
}


@pytest.mark.parametrize("method", sorted(TOLERANCES))
def test_estimator(benchmark, method):
    estimate = benchmark(estimate_hurst, PATH, method)
    assert estimate.hurst == pytest.approx(TARGET_H, abs=TOLERANCES[method])


def test_all_methods_covered():
    assert set(TOLERANCES) == set(available_methods())
