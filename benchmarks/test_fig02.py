"""Benchmark for paper Fig. 2: beta-hat of the simple-random sampled ACF (Eq. 11)."""

from __future__ import annotations

from conftest import run_figure


def test_fig02(benchmark):
    panels = run_figure(benchmark, "fig02")
    panel_b = panels[1]
    errors = [abs(b - h) for b, h in
              zip(panel_b.x_values, panel_b.series["beta_hat"])]
    assert max(errors) < 0.05
