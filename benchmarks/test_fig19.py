"""Benchmark for paper Fig. 19: online-tuned BSS headline comparison, real-like."""

from __future__ import annotations

from conftest import run_figure


def test_fig19(benchmark):
    panels = run_figure(benchmark, "fig19")
    assert max(panels[0].series["bss_overhead"]) < 1.5
