"""Benchmark for paper Fig. 20: efficiency of the three methods."""

from __future__ import annotations

from conftest import run_figure


def test_fig20(benchmark):
    panels = run_figure(benchmark, "fig20")
    assert any("gain" in note for note in panels[0].notes)
