"""Benchmark for paper Fig. 7: heavy-tailed 1-burst periods."""

from __future__ import annotations

from conftest import run_figure


def test_fig07(benchmark):
    panels = run_figure(benchmark, "fig07")
    for panel in panels:
        assert "alpha" in " ".join(panel.notes)
