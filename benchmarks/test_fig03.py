"""Benchmark for paper Fig. 3: SNC numerical method recovers beta (Theorem 1)."""

from __future__ import annotations

from conftest import run_figure


def test_fig03(benchmark):
    panels = run_figure(benchmark, "fig03")
    for panel in panels:
        errors = [abs(b - h) for b, h in
                  zip(panel.x_values, panel.series["beta_hat"])]
        assert max(errors) < 0.05
