"""Benchmark for paper Fig. 14: xi contours over (L, eps)."""

from __future__ import annotations

from conftest import run_figure


def test_fig14(benchmark):
    panels = run_figure(benchmark, "fig14")
    assert panels[0].x_values[0] == 1
