"""Standalone launcher for the perf-regression benchmark suite.

Equivalent to ``python -m repro.experiments bench``; kept here so the
perf harness lives next to the figure benchmarks.  Usage::

    python benchmarks/perf/run.py [--quick] [--output BENCH_PR1.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.experiments.bench import main
except ImportError:  # pragma: no cover - direct invocation without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    from repro.experiments.bench import main

if __name__ == "__main__":
    sys.exit(main())
