"""Standalone launcher for the perf-regression benchmark suite.

Equivalent to ``python -m repro.experiments bench``; kept here so the
perf harness lives next to the figure benchmarks.  Usage::

    python benchmarks/perf/run.py [--quick] [--workers N] [--output BENCH_PR5.json]

``--workers N`` appends workers=1 vs workers=N scaling rows for the
sharded ensemble engine (:mod:`repro.parallel`) to the report; every run
records the engine's dispatch-overhead rows (shared-memory vs pickled
traces, persistent pool vs fresh fork per call, pipelined vs sync
streaming ingest, joint vs per-scale estimator shard layout, scenario
campaign store + manifest vs bare cell evaluation).
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.experiments.bench import main
except ImportError:  # pragma: no cover - direct invocation without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    from repro.experiments.bench import main

if __name__ == "__main__":
    sys.exit(main())
