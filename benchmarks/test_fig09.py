"""Benchmark for paper Fig. 9: unbiased-L surface L(eta, eps)."""

from __future__ import annotations

from conftest import run_figure


def test_fig09(benchmark):
    panels = run_figure(benchmark, "fig09")
    assert any("eps1" in note for note in panels[0].notes)
