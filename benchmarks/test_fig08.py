"""Benchmark for paper Fig. 8: Pareto marginal CCDF fits."""

from __future__ import annotations

from conftest import run_figure


def test_fig08(benchmark):
    panels = run_figure(benchmark, "fig08")
    for panel in panels:
        assert panel.series["measured_ccdf"][0] >= panel.series["measured_ccdf"][-1]
