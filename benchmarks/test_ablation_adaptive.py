"""Ablation: BSS versus the adaptive-random baseline (paper ref. [2]).

Both schemes spend extra samples during bursts; BSS spends them on a
systematic sub-grid triggered per interval, the adaptive baseline raises
its Bernoulli rate while an EWMA detector reports elevated load.  This
bench compares accuracy and realised overhead at equal base rates.
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveRandomSampler, BiasedSystematicSampler
from repro.core.variance import instance_means
from repro.traffic import synthetic_trace
from repro.utils.tables import format_table

SEED = 2718
TRACE = synthetic_trace(1 << 17, SEED, alpha=1.3, hurst=0.85)
TRUE_MEAN = TRACE.mean
RATES = (1e-4, 3e-4, 1e-3)


def test_bss_vs_adaptive(benchmark):
    rows = []

    def sweep():
        rows.clear()
        for rate in RATES:
            bss = BiasedSystematicSampler.design(
                rate, 1.3, cs=0.5, total_points=len(TRACE), offset=None
            )
            adaptive = AdaptiveRandomSampler(
                base_rate=rate, boost_factor=8.0, trigger=1.2
            )
            for name, sampler in (("bss", bss), ("adaptive", adaptive)):
                medians = float(
                    np.median(instance_means(sampler, TRACE, 11, SEED))
                )
                result = sampler.sample(TRACE, SEED)
                rows.append([
                    f"{rate:g}",
                    name,
                    round(1 - medians / TRUE_MEAN, 4),
                    round(result.actual_rate / rate, 2),
                ])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["base_rate", "method", "eta", "rate_inflation"], rows,
        title="BSS vs adaptive random sampling",
    ))
    # Both must beat doing nothing: realised rates stay within ~10x base.
    assert all(row[3] < 10.0 for row in rows)
