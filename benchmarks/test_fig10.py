"""Benchmark for paper Fig. 10: bias surface xi(L, eps)."""

from __future__ import annotations

from conftest import run_figure


def test_fig10(benchmark):
    panels = run_figure(benchmark, "fig10")
    assert any("eps2" in note for note in panels[0].notes)
