"""Ablation: the four LRD traffic generators.

Compares runtime and Hurst-recovery quality of the generator choices
DESIGN.md calls out: Davies-Harte fGn (the workhorse), Hosking fGn (the
O(n^2) cross-check), on/off aggregation (the paper's ns-2 recipe), and
the Pareto-marginal copula transform (the Sec. V/VI workload).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hurst import aggregated_variance_hurst
from repro.traffic import (
    MGInfinityModel,
    OnOffModel,
    ParetoLRDModel,
    fgn_davies_harte,
    fgn_hosking,
)

TARGET_H = 0.8
SEED = 99


def _check_lrd(values: np.ndarray, *, clip: bool = False) -> None:
    if clip:
        values = np.minimum(values, np.quantile(values, 0.999))
    estimate = aggregated_variance_hurst(values)
    assert estimate.hurst > 0.6, "generator lost long-range dependence"


def test_davies_harte(benchmark):
    values = benchmark(fgn_davies_harte, 1 << 16, TARGET_H, SEED)
    _check_lrd(values)


def test_hosking(benchmark):
    # O(n^2): benchmarked at a smaller n by necessity — the gap versus
    # Davies-Harte is the point of the ablation.
    values = benchmark(fgn_hosking, 4096, TARGET_H, SEED)
    assert values.size == 4096


def test_onoff_aggregate(benchmark):
    model = OnOffModel.for_hurst(TARGET_H, n_sources=64)
    values = benchmark(model.generate, 1 << 16, SEED)
    _check_lrd(values)


def test_mg_infinity(benchmark):
    model = MGInfinityModel.for_hurst(TARGET_H)
    values = benchmark(model.generate, 1 << 16, SEED)
    _check_lrd(values)


def test_pareto_copula(benchmark):
    model = ParetoLRDModel.from_mean(5.68, 1.5, TARGET_H, upper_ccdf=1e-4)
    values = benchmark(model.generate, 1 << 16, SEED)
    _check_lrd(values, clip=True)
    assert values.min() >= model.marginal.scale - 1e-9


def test_generators_agree_on_hurst():
    """Non-timing sanity: all generators target the same H ballpark."""
    estimates = []
    estimates.append(
        aggregated_variance_hurst(fgn_davies_harte(1 << 16, TARGET_H, 1)).hurst
    )
    estimates.append(
        aggregated_variance_hurst(
            OnOffModel.for_hurst(TARGET_H, n_sources=64).generate(1 << 16, 2)
        ).hurst
    )
    assert max(estimates) - min(estimates) < 0.25
    assert all(e == pytest.approx(TARGET_H, abs=0.15) for e in estimates)
