"""Benchmark for paper Fig. 17: biased BSS with known eta, Bell-Labs-like trace."""

from __future__ import annotations

from conftest import run_figure


def test_fig17(benchmark):
    panels = run_figure(benchmark, "fig17")
    assert len(panels) == 2
