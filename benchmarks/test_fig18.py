"""Benchmark for paper Fig. 18: online-tuned BSS headline comparison, synthetic."""

from __future__ import annotations

from conftest import run_figure


def test_fig18(benchmark):
    panels = run_figure(benchmark, "fig18")
    assert max(panels[0].series["bss_overhead"]) < 1.5
