"""Benchmark for paper Fig. 11: xi(eps) slice at L=5."""

from __future__ import annotations

from conftest import run_figure


def test_fig11(benchmark):
    panels = run_figure(benchmark, "fig11")
    assert max(panels[0].series["xi"]) > 1.0
