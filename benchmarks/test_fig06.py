"""Benchmark for paper Fig. 6: sampled vs real mean under systematic sampling."""

from __future__ import annotations

from conftest import run_figure


def test_fig06(benchmark):
    panels = run_figure(benchmark, "fig06")
    for panel in panels:
        assert panel.series["eta"][0] > 0
