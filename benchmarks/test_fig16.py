"""Benchmark for paper Fig. 16: biased BSS with known eta, synthetic trace."""

from __future__ import annotations

from conftest import run_figure


def test_fig16(benchmark):
    panels = run_figure(benchmark, "fig16")
    assert len(panels) == 2
