"""Benchmark for paper Fig. 22: average variance: BSS vs systematic."""

from __future__ import annotations

from conftest import run_figure


def test_fig22(benchmark):
    panels = run_figure(benchmark, "fig22")
    assert {"systematic", "proposed"} <= set(panels[0].series)
