"""Ablation: BSS sensitivity to its design knobs.

Sweeps eps, L, Cs, and the pre-sample count on one trace, printing the
resulting sampled-mean error and overhead — the empirical counterpart of
the Fig. 9/10/15 design surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BiasedSystematicSampler
from repro.core.variance import instance_means
from repro.traffic import synthetic_trace
from repro.utils.tables import format_table

RATE = 3e-4
SEED = 4321
TRACE = synthetic_trace(1 << 18, SEED, alpha=1.3, hurst=0.85)
TRUE_MEAN = TRACE.mean


def _evaluate(sampler: BiasedSystematicSampler) -> tuple[float, float]:
    means = instance_means(sampler, TRACE, 11, SEED)
    result = sampler.sample(TRACE, SEED)
    eta = 1.0 - float(np.median(means)) / TRUE_MEAN
    overhead = result.n_extra / max(result.n_base, 1)
    return eta, overhead


def test_epsilon_sweep(benchmark):
    """Overhead must fall and |eta| drift as eps rises past 1."""
    rows = []

    def sweep():
        rows.clear()
        for eps in (0.5, 0.75, 1.0, 1.5, 2.0):
            sampler = BiasedSystematicSampler.from_rate(
                RATE, 6, epsilon=eps, offset=None
            )
            eta, overhead = _evaluate(sampler)
            rows.append([eps, round(eta, 4), round(overhead, 4)])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["eps", "eta", "overhead"], rows,
                       title="BSS epsilon sweep"))
    overheads = [r[2] for r in rows]
    assert overheads[0] > overheads[-1], "overhead must fall with eps"


def test_l_sweep(benchmark):
    """More extras push eta down (toward over-correction) at cost."""
    rows = []

    def sweep():
        rows.clear()
        for L in (0, 2, 6, 12, 24):
            sampler = BiasedSystematicSampler.from_rate(
                RATE, L, epsilon=1.0, offset=None
            )
            eta, overhead = _evaluate(sampler)
            rows.append([L, round(eta, 4), round(overhead, 4)])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["L", "eta", "overhead"], rows, title="BSS L sweep"))
    etas = [r[1] for r in rows]
    assert etas[0] > etas[-1], "raising L must push the estimate upward"


def test_cs_sweep(benchmark):
    """The design rule's L grows with the assumed trace constant Cs."""
    rows = []

    def sweep():
        rows.clear()
        for cs in (0.2, 0.4, 0.8):
            sampler = BiasedSystematicSampler.design(
                RATE, 1.3, cs=cs, total_points=len(TRACE), offset=None
            )
            eta, overhead = _evaluate(sampler)
            rows.append([cs, sampler.extra_samples, round(eta, 4),
                         round(overhead, 4)])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["cs", "L", "eta", "overhead"], rows,
                       title="BSS design-rule Cs sweep"))
    ls = [r[1] for r in rows]
    assert ls == sorted(ls), "designed L must grow with Cs"


def test_presample_sweep(benchmark):
    """Pre-samples delay extras; too many eat the low-rate budget."""
    rows = []

    def sweep():
        rows.clear()
        for npre in (0, 5, 20, 60):
            sampler = BiasedSystematicSampler.from_rate(
                RATE, 6, epsilon=1.0, n_presamples=npre, offset=None
            )
            eta, overhead = _evaluate(sampler)
            rows.append([npre, round(eta, 4), round(overhead, 4)])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(["n_presamples", "eta", "overhead"], rows,
                       title="BSS pre-sample sweep"))
    overheads = [r[2] for r in rows]
    assert overheads[0] >= overheads[-1], (
        "a larger warm-up cannot increase the overhead"
    )


def test_online_vs_offline_throughput(benchmark):
    """The streaming sampler's per-granule cost (items/sec)."""
    from repro.core import OnlineBSS

    values = TRACE.values[: 1 << 16]

    def stream():
        online = OnlineBSS(int(1 / RATE), 6, epsilon=1.0)
        online.process(values)
        return online.result()

    result = benchmark.pedantic(stream, rounds=1, iterations=1)
    offline = BiasedSystematicSampler.from_rate(RATE, 6, epsilon=1.0).sample(values)
    assert result.n_base == offline.n_base
