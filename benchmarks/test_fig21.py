"""Benchmark for paper Fig. 21: Hurst preservation under BSS."""

from __future__ import annotations

from conftest import run_figure


def test_fig21(benchmark):
    panels = run_figure(benchmark, "fig21")
    errors = [abs(b - h) for b, h in
              zip(panels[0].x_values, panels[0].series["beta_hat"])]
    assert max(errors) < 0.25
