"""Shared plumbing for the figure benchmarks.

Each benchmark regenerates one paper figure's data through the experiment
harness at a reduced scale (set ``REPRO_BENCH_SCALE`` to change it), times
the run via pytest-benchmark, and prints the figure's table so the output
mirrors the paper's evaluation section.
"""

from __future__ import annotations

import os

import pytest

#: Workload scale for benchmark runs (1.0 = full paper-scale traces).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_SEED = 20050608


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_figure(benchmark, name: str, *, scale: float | None = None):
    """Benchmark one experiment and emit its rendered panels."""
    from repro.experiments import run_experiment

    chosen = BENCH_SCALE if scale is None else scale

    def once():
        return run_experiment(name, scale=chosen, seed=BENCH_SEED)

    panels = benchmark.pedantic(once, rounds=1, iterations=1)
    for panel in panels:
        print()
        print(panel.render())
    return panels
