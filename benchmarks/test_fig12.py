"""Benchmark for paper Fig. 12: unbiased BSS, synthetic trace."""

from __future__ import annotations

from conftest import run_figure


def test_fig12(benchmark):
    panels = run_figure(benchmark, "fig12")
    assert len(panels) == 2
