"""Benchmark for paper Fig. 13: unbiased BSS, Bell-Labs-like trace."""

from __future__ import annotations

from conftest import run_figure


def test_fig13(benchmark):
    panels = run_figure(benchmark, "fig13")
    assert len(panels) == 2
